// BGP path attributes: typed representation, the RFC 4271/6793/1997/8092
// wire codec, and the sharing machinery the whole control plane is built
// on — AttrPool (BIRD-style interning keyed by content hash, with a
// canonical-encoding cache per codec option set) and AttrBuilder (a
// copy-on-write handle that clones lazily on first mutation). One interned
// AttrsPtr travels from decode to wire; policy, hooks, and enforcement all
// operate on it and only pay for a copy when they actually mutate.
// Unknown optional-transitive attributes are preserved verbatim (with the
// Partial bit set when propagated), which is what PEERING's capability
// framework polices (§4.7: "optional BGP transitive attributes").
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/types.h"
#include "netbase/bytes.h"
#include "netbase/ip.h"
#include "netbase/result.h"

namespace peering::bgp {

/// Attribute type codes used by the codec.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kAs4Path = 17,
  kAs4Aggregator = 18,
  kLargeCommunities = 32,
};

/// Attribute flag bits.
enum AttrFlags : std::uint8_t {
  kFlagOptional = 0x80,
  kFlagTransitive = 0x40,
  kFlagPartial = 0x20,
  kFlagExtendedLength = 0x10,
};

/// An attribute the codec does not model, carried opaquely.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  Bytes value;

  bool optional() const { return flags & kFlagOptional; }
  bool transitive() const { return flags & kFlagTransitive; }

  bool operator==(const RawAttribute&) const = default;
};

struct Aggregator {
  Asn asn = 0;
  Ipv4Address address;
  bool operator==(const Aggregator&) const = default;
};

/// The parsed attribute set of a route.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  Ipv4Address next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;
  std::vector<LargeCommunity> large_communities;
  /// Unrecognized attributes, preserved for propagation if transitive.
  std::vector<RawAttribute> unknown;

  bool has_community(Community c) const {
    for (auto x : communities)
      if (x == c) return true;
    return false;
  }

  bool operator==(const PathAttributes&) const = default;
};

/// Codec options negotiated per session.
struct AttrCodecOptions {
  /// Whether the session negotiated 4-octet-AS (RFC 6793). When false the
  /// AS_PATH carries 2-byte ASNs with AS_TRANS placeholders and a shadow
  /// AS4_PATH attribute carries the real path.
  bool four_byte_asn = true;
};

/// Serializes `attrs` into the path-attributes portion of an UPDATE body.
Bytes encode_attributes(const PathAttributes& attrs,
                        const AttrCodecOptions& options);

/// Sentinel for "this encoded attribute block carries no NEXT_HOP".
inline constexpr std::size_t kNoNextHopOffset = static_cast<std::size_t>(-1);

/// Offset of the 4-byte NEXT_HOP value inside an encoded attribute block
/// (as produced by encode_attributes), or kNoNextHopOffset when absent.
/// The update-group export path uses this to splice a per-neighbor
/// next-hop into a cached wire template instead of re-encoding.
std::size_t next_hop_value_offset(std::span<const std::uint8_t> attr_bytes);

/// Parses the path-attributes portion of an UPDATE body. Reconstructs
/// 4-byte paths from AS4_PATH when the session is 2-byte.
Result<PathAttributes> decode_attributes(std::span<const std::uint8_t> data,
                                         const AttrCodecOptions& options);

/// A shared, immutable attribute set. Identical sets interned through one
/// AttrPool compare equal by pointer.
using AttrsPtr = std::shared_ptr<const PathAttributes>;

/// Wraps freshly constructed attributes in an AttrsPtr. Not interned: pass
/// the result through AttrPool::adopt/intern before storing it in a RIB if
/// pointer-level deduplication matters.
inline AttrsPtr make_attrs(PathAttributes attrs) {
  return std::make_shared<const PathAttributes>(std::move(attrs));
}

/// Content hash over every attribute field; the AttrPool bucket index.
std::size_t hash_value(const PathAttributes& attrs);

class AttrPool;

/// Copy-on-write handle over an interned attribute set. Interposition
/// points (policy actions, import/export hooks, enforcement transforms)
/// receive a builder, read through view(), and call mutate() only when they
/// actually change something — the underlying PathAttributes is cloned
/// lazily on the first mutate() and re-interned on commit(). A route that
/// flows through every hook untouched never copies its attributes.
class AttrBuilder {
 public:
  AttrBuilder() = default;
  explicit AttrBuilder(AttrsPtr base) : base_(std::move(base)) {}
  explicit AttrBuilder(PathAttributes owned)
      : owned_(std::make_unique<PathAttributes>(std::move(owned))) {}

  /// Read-only access; never copies.
  const PathAttributes& view() const {
    static const PathAttributes kEmpty;
    return owned_ ? *owned_ : (base_ ? *base_ : kEmpty);
  }
  const PathAttributes* operator->() const { return &view(); }

  /// Mutable access; clones the base set on first call.
  PathAttributes& mutate() {
    if (!owned_)
      owned_ = base_ ? std::make_unique<PathAttributes>(*base_)
                     : std::make_unique<PathAttributes>();
    return *owned_;
  }

  /// True once mutate() has been called (a private copy exists).
  bool dirty() const { return owned_ != nullptr; }
  const AttrsPtr& base() const { return base_; }

  /// Finishes the flow: returns the untouched base pointer when clean, or
  /// re-interns the mutated copy. The builder is reusable afterwards (its
  /// base becomes the committed pointer).
  AttrsPtr commit(AttrPool& pool);

  /// Like commit() without a pool: clean -> base, dirty -> fresh AttrsPtr.
  AttrsPtr release();

 private:
  AttrsPtr base_;
  std::unique_ptr<PathAttributes> owned_;
};

/// Interns PathAttributes so identical attribute sets share one allocation,
/// mirroring BIRD's attribute cache (the reason Figure 6a's per-route
/// memory stays in the hundreds of bytes). Keyed by content hash. Also
/// memoizes the wire encoding per (attribute set, codec options) so an
/// ADD-PATH fan-out to N sessions with identical negotiated options
/// serializes the update body once, not N times.
///
/// Thread safety: single-threaded by default. set_concurrent(true) puts
/// intern/adopt/owns/encoded behind a mutex so the pipelined speaker's
/// decision and encode workers can share one pool (refcounts are already
/// atomic via shared_ptr; returned Bytes&/AttrsPtr stay valid because
/// unordered_map nodes never move). sweep() and the size/stats accessors
/// remain serial-point-only either way.
class AttrPool {
 public:
  struct Stats {
    std::uint64_t intern_hits = 0;
    std::uint64_t intern_misses = 0;
    std::uint64_t encode_hits = 0;
    std::uint64_t encode_misses = 0;

    double intern_hit_rate() const {
      auto total = intern_hits + intern_misses;
      return total == 0 ? 0.0 : static_cast<double>(intern_hits) / total;
    }
    double encode_hit_rate() const {
      auto total = encode_hits + encode_misses;
      return total == 0 ? 0.0 : static_cast<double>(encode_hits) / total;
    }
  };

  AttrsPtr intern(const PathAttributes& attrs);
  AttrsPtr intern(PathAttributes&& attrs);

  /// Returns `attrs` unchanged when it is already pool-owned (O(1) pointer
  /// lookup); otherwise interns its content. Lets hooks hand back either a
  /// committed builder result or a foreign pointer without double-copying.
  AttrsPtr adopt(const AttrsPtr& attrs);

  /// True if this exact pointer came from this pool.
  bool owns(const AttrsPtr& attrs) const {
    auto lock = maybe_lock();
    return attrs && by_ptr_.count(attrs.get()) > 0;
  }

  /// Toggles the internal mutex. Flip only at a serial point (no concurrent
  /// callers in flight).
  void set_concurrent(bool on) { concurrent_ = on; }
  bool concurrent() const { return concurrent_; }

  /// Cached wire encoding of an interned set for the given codec options.
  /// Encoded at most once per (set, options); all sessions with identical
  /// negotiated options share the bytes. Foreign (non-pool) pointers fall
  /// back to a direct encode into a scratch buffer. The reference is valid
  /// until the next encoded() call or sweep(). When `hit` is non-null it
  /// reports whether this call was served from the cache — callers must use
  /// it (not a stats() delta) for attribution, because in concurrent mode
  /// other threads advance the shared counters between reads.
  const Bytes& encoded(const AttrsPtr& attrs, const AttrCodecOptions& options,
                       bool* hit = nullptr, std::size_t* nh_offset = nullptr);

  /// Ablation toggle: with the cache disabled every encoded() call
  /// serializes from scratch (the pre-refactor behaviour).
  void set_encode_cache_enabled(bool enabled) {
    encode_cache_enabled_ = enabled;
  }
  bool encode_cache_enabled() const { return encode_cache_enabled_; }

  std::size_t size() const { return pool_.size(); }
  /// Approximate bytes held by pooled attribute objects.
  std::size_t memory_bytes() const { return attr_bytes_; }
  /// Bytes held by cached wire encodings.
  std::size_t encode_cache_bytes() const { return wire_bytes_; }
  const Stats& stats() const { return stats_; }

  /// Drops entries (and their cached encodings) no longer referenced
  /// elsewhere. Returns entries removed. BgpSpeaker calls this on session
  /// reset so a churned-out table does not leave the pool inflated.
  std::size_t sweep();

 private:
  /// Cached per-entry wire encodings, indexed by AttrCodecOptions::
  /// four_byte_asn (the only codec option that changes attribute bytes).
  struct Entry {
    std::array<std::optional<Bytes>, 2> wire;
    /// NEXT_HOP value offset within wire[slot]; valid iff wire[slot] is
    /// engaged (computed once at encode time).
    std::array<std::size_t, 2> nh_offset = {kNoNextHopOffset,
                                            kNoNextHopOffset};
  };
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(const PathAttributes& a) const {
      return hash_value(a);
    }
    std::size_t operator()(const AttrsPtr& p) const { return hash_value(*p); }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(const AttrsPtr& a, const AttrsPtr& b) const {
      return a == b || *a == *b;
    }
    bool operator()(const AttrsPtr& a, const PathAttributes& b) const {
      return *a == b;
    }
    bool operator()(const PathAttributes& a, const AttrsPtr& b) const {
      return a == *b;
    }
  };

  static std::size_t attrs_footprint(const PathAttributes& attrs);
  AttrsPtr insert(AttrsPtr ptr);
  AttrsPtr intern_impl(const PathAttributes& attrs);
  AttrsPtr intern_impl(PathAttributes&& attrs);

  std::unique_lock<std::mutex> maybe_lock() const {
    return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                       : std::unique_lock<std::mutex>();
  }

  std::unordered_map<AttrsPtr, Entry, Hash, Eq> pool_;
  /// Pointer index for O(1) encoded()/owns() lookups; values are stable
  /// because unordered_map nodes do not move.
  std::unordered_map<const PathAttributes*, Entry*> by_ptr_;
  std::size_t attr_bytes_ = 0;
  std::size_t wire_bytes_ = 0;
  bool encode_cache_enabled_ = true;
  bool concurrent_ = false;
  mutable std::mutex mu_;
  Stats stats_;
  Bytes scratch_;
};

}  // namespace peering::bgp
