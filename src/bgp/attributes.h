// BGP path attributes: typed representation plus the RFC 4271/6793/1997/8092
// wire codec. Unknown optional-transitive attributes are preserved verbatim
// (with the Partial bit set when propagated), which is what PEERING's
// capability framework polices (§4.7: "optional BGP transitive attributes").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/types.h"
#include "netbase/bytes.h"
#include "netbase/ip.h"
#include "netbase/result.h"

namespace peering::bgp {

/// Attribute type codes used by the codec.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kAs4Path = 17,
  kAs4Aggregator = 18,
  kLargeCommunities = 32,
};

/// Attribute flag bits.
enum AttrFlags : std::uint8_t {
  kFlagOptional = 0x80,
  kFlagTransitive = 0x40,
  kFlagPartial = 0x20,
  kFlagExtendedLength = 0x10,
};

/// An attribute the codec does not model, carried opaquely.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  Bytes value;

  bool optional() const { return flags & kFlagOptional; }
  bool transitive() const { return flags & kFlagTransitive; }

  bool operator==(const RawAttribute&) const = default;
};

struct Aggregator {
  Asn asn = 0;
  Ipv4Address address;
  bool operator==(const Aggregator&) const = default;
};

/// The parsed attribute set of a route.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  Ipv4Address next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;
  std::vector<LargeCommunity> large_communities;
  /// Unrecognized attributes, preserved for propagation if transitive.
  std::vector<RawAttribute> unknown;

  bool has_community(Community c) const {
    for (auto x : communities)
      if (x == c) return true;
    return false;
  }

  bool operator==(const PathAttributes&) const = default;
};

/// Codec options negotiated per session.
struct AttrCodecOptions {
  /// Whether the session negotiated 4-octet-AS (RFC 6793). When false the
  /// AS_PATH carries 2-byte ASNs with AS_TRANS placeholders and a shadow
  /// AS4_PATH attribute carries the real path.
  bool four_byte_asn = true;
};

/// Serializes `attrs` into the path-attributes portion of an UPDATE body.
Bytes encode_attributes(const PathAttributes& attrs,
                        const AttrCodecOptions& options);

/// Parses the path-attributes portion of an UPDATE body. Reconstructs
/// 4-byte paths from AS4_PATH when the session is 2-byte.
Result<PathAttributes> decode_attributes(std::span<const std::uint8_t> data,
                                         const AttrCodecOptions& options);

}  // namespace peering::bgp
