#include "bgp/attributes.h"

#include <algorithm>

namespace peering::bgp {

namespace {

/// Emits one attribute (flags, type, length, value), choosing extended
/// length automatically.
void emit_attr(ByteWriter& w, std::uint8_t flags, AttrType type,
               const Bytes& value) {
  if (value.size() > 255) flags |= kFlagExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (flags & kFlagExtendedLength) {
    w.u16(static_cast<std::uint16_t>(value.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(value.size()));
  }
  w.raw(value);
}

Bytes encode_as_path(const AsPath& path, bool four_byte) {
  ByteWriter w;
  for (const auto& seg : path.segments()) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) {
      if (four_byte) {
        w.u32(asn);
      } else {
        w.u16(asn > 0xffff ? static_cast<std::uint16_t>(kAsTrans)
                           : static_cast<std::uint16_t>(asn));
      }
    }
  }
  return w.take();
}

bool path_needs_as4(const AsPath& path) {
  for (const auto& seg : path.segments())
    for (Asn asn : seg.asns)
      if (asn > 0xffff) return true;
  return false;
}

Result<AsPath> decode_as_path(std::span<const std::uint8_t> data,
                              bool four_byte) {
  AsPath path;
  ByteReader r(data);
  while (!r.empty()) {
    auto type = r.u8();
    auto count = r.u8();
    if (!type || !count) return Error("as_path: truncated segment header");
    if (*type != 1 && *type != 2) return Error("as_path: bad segment type");
    AsPathSegment seg;
    seg.type = static_cast<AsPathSegmentType>(*type);
    seg.asns.reserve(*count);
    for (int i = 0; i < *count; ++i) {
      if (four_byte) {
        auto asn = r.u32();
        if (!asn) return Error("as_path: truncated asn");
        seg.asns.push_back(*asn);
      } else {
        auto asn = r.u16();
        if (!asn) return Error("as_path: truncated asn");
        seg.asns.push_back(*asn);
      }
    }
    path.segments().push_back(std::move(seg));
  }
  return path;
}

/// RFC 6793 §4.2.3: merge AS4_PATH into a 2-byte AS_PATH by replacing the
/// trailing portion. We implement the common case: if lengths allow, keep
/// the leading (AS_TRANS-bearing) extra hops from AS_PATH and splice the
/// AS4_PATH behind them.
AsPath merge_as4_path(const AsPath& two_byte, const AsPath& as4) {
  std::size_t two_len = two_byte.decision_length();
  std::size_t four_len = as4.decision_length();
  if (four_len > two_len) return two_byte;  // malformed AS4_PATH: ignore
  if (four_len == two_len) return as4;
  // Keep the first (two_len - four_len) ASNs from the 2-byte path.
  std::vector<Asn> flat = two_byte.flatten();
  std::vector<Asn> merged(flat.begin(),
                          flat.begin() + static_cast<std::ptrdiff_t>(
                                             two_len - four_len));
  for (Asn a : as4.flatten()) merged.push_back(a);
  return AsPath(std::move(merged));
}

}  // namespace

Bytes encode_attributes(const PathAttributes& attrs,
                        const AttrCodecOptions& options) {
  // Typical sets (origin + path + next-hop + a few communities) fit in one
  // up-front allocation instead of three doubling steps.
  ByteWriter w(128);

  {
    Bytes v{static_cast<std::uint8_t>(attrs.origin)};
    emit_attr(w, kFlagTransitive, AttrType::kOrigin, v);
  }
  {
    Bytes v = encode_as_path(attrs.as_path, options.four_byte_asn);
    emit_attr(w, kFlagTransitive, AttrType::kAsPath, v);
    if (!options.four_byte_asn && path_needs_as4(attrs.as_path)) {
      Bytes v4 = encode_as_path(attrs.as_path, /*four_byte=*/true);
      emit_attr(w, kFlagOptional | kFlagTransitive, AttrType::kAs4Path, v4);
    }
  }
  if (!attrs.next_hop.is_zero()) {
    ByteWriter v;
    v.u32(attrs.next_hop.value());
    emit_attr(w, kFlagTransitive, AttrType::kNextHop, v.bytes());
  }
  if (attrs.med) {
    ByteWriter v;
    v.u32(*attrs.med);
    emit_attr(w, kFlagOptional, AttrType::kMed, v.bytes());
  }
  if (attrs.local_pref) {
    ByteWriter v;
    v.u32(*attrs.local_pref);
    emit_attr(w, kFlagTransitive, AttrType::kLocalPref, v.bytes());
  }
  if (attrs.atomic_aggregate) {
    emit_attr(w, kFlagTransitive, AttrType::kAtomicAggregate, {});
  }
  if (attrs.aggregator) {
    ByteWriter v;
    if (options.four_byte_asn) {
      v.u32(attrs.aggregator->asn);
    } else {
      v.u16(attrs.aggregator->asn > 0xffff
                ? static_cast<std::uint16_t>(kAsTrans)
                : static_cast<std::uint16_t>(attrs.aggregator->asn));
    }
    v.u32(attrs.aggregator->address.value());
    emit_attr(w, kFlagOptional | kFlagTransitive, AttrType::kAggregator,
              v.bytes());
    if (!options.four_byte_asn && attrs.aggregator->asn > 0xffff) {
      ByteWriter v4;
      v4.u32(attrs.aggregator->asn);
      v4.u32(attrs.aggregator->address.value());
      emit_attr(w, kFlagOptional | kFlagTransitive, AttrType::kAs4Aggregator,
                v4.bytes());
    }
  }
  if (!attrs.communities.empty()) {
    ByteWriter v;
    for (Community c : attrs.communities) v.u32(c.raw);
    emit_attr(w, kFlagOptional | kFlagTransitive, AttrType::kCommunities,
              v.bytes());
  }
  if (!attrs.large_communities.empty()) {
    ByteWriter v;
    for (const LargeCommunity& c : attrs.large_communities) {
      v.u32(c.global);
      v.u32(c.local1);
      v.u32(c.local2);
    }
    emit_attr(w, kFlagOptional | kFlagTransitive, AttrType::kLargeCommunities,
              v.bytes());
  }
  for (const RawAttribute& raw : attrs.unknown) {
    // Only transitive unknowns are re-serialized; the Partial bit marks that
    // they crossed a speaker that did not understand them.
    if (!raw.transitive()) continue;
    emit_attr(w, static_cast<std::uint8_t>(raw.flags | kFlagPartial),
              static_cast<AttrType>(raw.type), raw.value);
  }
  return w.take();
}

std::size_t next_hop_value_offset(std::span<const std::uint8_t> attr_bytes) {
  std::size_t pos = 0;
  while (pos + 3 <= attr_bytes.size()) {
    const std::uint8_t flags = attr_bytes[pos];
    const std::uint8_t type = attr_bytes[pos + 1];
    std::size_t length;
    std::size_t header;
    if (flags & kFlagExtendedLength) {
      if (pos + 4 > attr_bytes.size()) return kNoNextHopOffset;
      length = (static_cast<std::size_t>(attr_bytes[pos + 2]) << 8) |
               attr_bytes[pos + 3];
      header = 4;
    } else {
      length = attr_bytes[pos + 2];
      header = 3;
    }
    if (pos + header + length > attr_bytes.size()) return kNoNextHopOffset;
    if (static_cast<AttrType>(type) == AttrType::kNextHop && length == 4)
      return pos + header;
    pos += header + length;
  }
  return kNoNextHopOffset;
}

Result<PathAttributes> decode_attributes(std::span<const std::uint8_t> data,
                                         const AttrCodecOptions& options) {
  PathAttributes attrs;
  std::optional<AsPath> as4_path;
  ByteReader r(data);
  while (!r.empty()) {
    auto flags = r.u8();
    auto type = r.u8();
    if (!flags || !type) return Error("attr: truncated header", 3);
    std::size_t length;
    if (*flags & kFlagExtendedLength) {
      auto len = r.u16();
      if (!len) return Error("attr: truncated extended length", 3);
      length = *len;
    } else {
      auto len = r.u8();
      if (!len) return Error("attr: truncated length", 3);
      length = *len;
    }
    auto body = r.sub(length);
    if (!body) return Error("attr: truncated body", 3);
    ByteReader v = *body;

    switch (static_cast<AttrType>(*type)) {
      case AttrType::kOrigin: {
        auto o = v.u8();
        if (!o || *o > 2) return Error("attr: bad ORIGIN", 6);
        attrs.origin = static_cast<Origin>(*o);
        break;
      }
      case AttrType::kAsPath: {
        auto raw = v.raw(v.remaining());
        auto path = decode_as_path(*raw, options.four_byte_asn);
        if (!path) return path.error();
        attrs.as_path = std::move(*path);
        break;
      }
      case AttrType::kAs4Path: {
        auto raw = v.raw(v.remaining());
        auto path = decode_as_path(*raw, /*four_byte=*/true);
        if (!path) return path.error();
        as4_path = std::move(*path);
        break;
      }
      case AttrType::kNextHop: {
        auto nh = v.u32();
        if (!nh) return Error("attr: bad NEXT_HOP", 8);
        attrs.next_hop = Ipv4Address(*nh);
        break;
      }
      case AttrType::kMed: {
        auto m = v.u32();
        if (!m) return Error("attr: bad MED", 5);
        attrs.med = *m;
        break;
      }
      case AttrType::kLocalPref: {
        auto lp = v.u32();
        if (!lp) return Error("attr: bad LOCAL_PREF", 5);
        attrs.local_pref = *lp;
        break;
      }
      case AttrType::kAtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        Aggregator agg;
        if (options.four_byte_asn) {
          auto asn = v.u32();
          auto addr = v.u32();
          if (!asn || !addr) return Error("attr: bad AGGREGATOR", 5);
          agg.asn = *asn;
          agg.address = Ipv4Address(*addr);
        } else {
          auto asn = v.u16();
          auto addr = v.u32();
          if (!asn || !addr) return Error("attr: bad AGGREGATOR", 5);
          agg.asn = *asn;
          agg.address = Ipv4Address(*addr);
        }
        attrs.aggregator = agg;
        break;
      }
      case AttrType::kAs4Aggregator: {
        auto asn = v.u32();
        auto addr = v.u32();
        if (!asn || !addr) return Error("attr: bad AS4_AGGREGATOR", 5);
        if (attrs.aggregator) {
          attrs.aggregator->asn = *asn;
          attrs.aggregator->address = Ipv4Address(*addr);
        }
        break;
      }
      case AttrType::kCommunities: {
        if (v.remaining() % 4 != 0)
          return Error("attr: bad COMMUNITIES length", 5);
        while (!v.empty()) attrs.communities.push_back(Community(*v.u32()));
        break;
      }
      case AttrType::kLargeCommunities: {
        if (v.remaining() % 12 != 0)
          return Error("attr: bad LARGE_COMMUNITIES length", 5);
        while (!v.empty()) {
          LargeCommunity c;
          c.global = *v.u32();
          c.local1 = *v.u32();
          c.local2 = *v.u32();
          attrs.large_communities.push_back(c);
        }
        break;
      }
      default: {
        if (!(*flags & kFlagOptional))
          return Error("attr: unrecognized well-known attribute " +
                           std::to_string(*type),
                       2);
        auto raw = v.bytes(v.remaining());
        attrs.unknown.push_back(RawAttribute{*flags, *type, std::move(*raw)});
        break;
      }
    }
  }

  if (as4_path && !options.four_byte_asn) {
    attrs.as_path = merge_as4_path(attrs.as_path, *as4_path);
  }
  return attrs;
}

// ---------------------------------------------------------------------------
// Attribute sharing: content hash, copy-on-write builder, interning pool.
// ---------------------------------------------------------------------------

namespace {

inline void hash_mix(std::size_t& seed, std::size_t v) {
  // boost::hash_combine's mixer, good enough for bucket selection.
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t hash_value(const PathAttributes& attrs) {
  std::size_t h = static_cast<std::size_t>(attrs.origin);
  for (const auto& seg : attrs.as_path.segments()) {
    hash_mix(h, static_cast<std::size_t>(seg.type));
    for (Asn asn : seg.asns) hash_mix(h, asn);
  }
  hash_mix(h, attrs.next_hop.value());
  hash_mix(h, attrs.med ? *attrs.med + 1 : 0);
  hash_mix(h, attrs.local_pref ? *attrs.local_pref + 1 : 0);
  hash_mix(h, attrs.atomic_aggregate ? 1 : 2);
  if (attrs.aggregator) {
    hash_mix(h, attrs.aggregator->asn);
    hash_mix(h, attrs.aggregator->address.value());
  }
  for (Community c : attrs.communities) hash_mix(h, c.raw);
  for (const LargeCommunity& lc : attrs.large_communities) {
    hash_mix(h, lc.global);
    hash_mix(h, lc.local1);
    hash_mix(h, lc.local2);
  }
  for (const RawAttribute& raw : attrs.unknown) {
    hash_mix(h, raw.flags);
    hash_mix(h, raw.type);
    for (std::uint8_t b : raw.value) hash_mix(h, b);
  }
  return h;
}

AttrsPtr AttrBuilder::commit(AttrPool& pool) {
  if (!owned_) {
    if (base_) return pool.adopt(base_);
    base_ = pool.intern(PathAttributes{});
    return base_;
  }
  base_ = pool.intern(std::move(*owned_));
  owned_.reset();
  return base_;
}

AttrsPtr AttrBuilder::release() {
  if (!owned_) return base_ ? base_ : make_attrs(PathAttributes{});
  base_ = make_attrs(std::move(*owned_));
  owned_.reset();
  return base_;
}

std::size_t AttrPool::attrs_footprint(const PathAttributes& attrs) {
  std::size_t bytes = sizeof(PathAttributes);
  for (const auto& seg : attrs.as_path.segments())
    bytes += sizeof(AsPathSegment) + seg.asns.size() * sizeof(Asn);
  bytes += attrs.communities.size() * sizeof(Community);
  bytes += attrs.large_communities.size() * sizeof(LargeCommunity);
  for (const auto& raw : attrs.unknown)
    bytes += sizeof(RawAttribute) + raw.value.size();
  return bytes;
}

AttrsPtr AttrPool::insert(AttrsPtr ptr) {
  attr_bytes_ += attrs_footprint(*ptr);
  auto [it, inserted] = pool_.emplace(ptr, Entry{});
  by_ptr_[it->first.get()] = &it->second;
  return it->first;
}

AttrsPtr AttrPool::intern_impl(const PathAttributes& attrs) {
  auto it = pool_.find(attrs);
  if (it != pool_.end()) {
    ++stats_.intern_hits;
    return it->first;
  }
  ++stats_.intern_misses;
  return insert(std::make_shared<const PathAttributes>(attrs));
}

AttrsPtr AttrPool::intern_impl(PathAttributes&& attrs) {
  auto it = pool_.find(attrs);
  if (it != pool_.end()) {
    ++stats_.intern_hits;
    return it->first;
  }
  ++stats_.intern_misses;
  return insert(std::make_shared<const PathAttributes>(std::move(attrs)));
}

AttrsPtr AttrPool::intern(const PathAttributes& attrs) {
  auto lock = maybe_lock();
  return intern_impl(attrs);
}

AttrsPtr AttrPool::intern(PathAttributes&& attrs) {
  auto lock = maybe_lock();
  return intern_impl(std::move(attrs));
}

AttrsPtr AttrPool::adopt(const AttrsPtr& attrs) {
  if (!attrs) return attrs;
  auto lock = maybe_lock();
  if (by_ptr_.count(attrs.get()) > 0) {
    ++stats_.intern_hits;
    return attrs;
  }
  return intern_impl(*attrs);
}

const Bytes& AttrPool::encoded(const AttrsPtr& attrs,
                               const AttrCodecOptions& options, bool* hit,
                               std::size_t* nh_offset) {
  auto lock = maybe_lock();
  const std::size_t slot = options.four_byte_asn ? 1 : 0;
  if (hit) *hit = false;
  if (encode_cache_enabled_) {
    auto it = by_ptr_.find(attrs.get());
    if (it != by_ptr_.end()) {
      auto& wire = it->second->wire[slot];
      if (wire) {
        ++stats_.encode_hits;
        if (hit) *hit = true;
        if (nh_offset) *nh_offset = it->second->nh_offset[slot];
        return *wire;
      }
      ++stats_.encode_misses;
      wire = encode_attributes(*attrs, options);
      wire_bytes_ += wire->size();
      it->second->nh_offset[slot] = next_hop_value_offset(*wire);
      if (nh_offset) *nh_offset = it->second->nh_offset[slot];
      return *wire;
    }
  }
  ++stats_.encode_misses;
  scratch_ = encode_attributes(*attrs, options);
  if (nh_offset) *nh_offset = next_hop_value_offset(scratch_);
  return scratch_;
}

std::size_t AttrPool::sweep() {
  std::size_t removed = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->first.use_count() == 1) {
      attr_bytes_ -= attrs_footprint(*it->first);
      for (const auto& wire : it->second.wire)
        if (wire) wire_bytes_ -= wire->size();
      by_ptr_.erase(it->first.get());
      it = pool_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace peering::bgp
