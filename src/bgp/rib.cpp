#include "bgp/rib.h"

#include <algorithm>

namespace peering::bgp {

namespace {

/// Merge-visits a vector of sorted maps in ascending key order. The
/// output order depends only on the union of keys, never on how they are
/// distributed over shards — linear-scan min is fine at the shard counts
/// we run (<= 16).
template <typename Shard, typename Fn>
void merge_shards(const std::vector<Shard>& shards, Fn&& fn) {
  if (shards.size() == 1) {
    for (const auto& entry : shards[0]) fn(entry);
    return;
  }
  std::vector<typename Shard::const_iterator> cursors;
  cursors.reserve(shards.size());
  for (const auto& shard : shards) cursors.push_back(shard.begin());
  for (;;) {
    int min = -1;
    for (int i = 0; i < static_cast<int>(shards.size()); ++i) {
      if (cursors[static_cast<std::size_t>(i)] ==
          shards[static_cast<std::size_t>(i)].end())
        continue;
      if (min < 0 || cursors[static_cast<std::size_t>(i)]->first <
                         cursors[static_cast<std::size_t>(min)]->first)
        min = i;
    }
    if (min < 0) return;
    auto& cursor = cursors[static_cast<std::size_t>(min)];
    fn(*cursor);
    ++cursor;
  }
}

}  // namespace

AdjRibIn::AdjRibIn(exec::PartitionMap pmap)
    : pmap_(pmap),
      shards_(pmap.partitions()),
      shard_sizes_(pmap.partitions(), 0) {}

bool AdjRibIn::update(const RibRoute& route) {
  std::uint32_t shard = pmap_.of(route.prefix);
  auto& paths = shards_[shard][route.prefix];
  auto it = std::lower_bound(paths.begin(), paths.end(), route.path_id,
                             [](const RibRoute& r, std::uint32_t id) {
                               return r.path_id < id;
                             });
  if (it == paths.end() || it->path_id != route.path_id) {
    paths.insert(it, route);
    ++shard_sizes_[shard];
    return true;
  }
  if (it->attrs == route.attrs) return false;
  *it = route;
  return true;
}

std::optional<RibRoute> AdjRibIn::withdraw(const Ipv4Prefix& prefix,
                                           std::uint32_t path_id) {
  std::uint32_t shard = pmap_.of(prefix);
  auto& routes = shards_[shard];
  auto pit = routes.find(prefix);
  if (pit == routes.end()) return std::nullopt;
  auto& paths = pit->second;
  auto it = std::lower_bound(paths.begin(), paths.end(), path_id,
                             [](const RibRoute& r, std::uint32_t id) {
                               return r.path_id < id;
                             });
  if (it == paths.end() || it->path_id != path_id) return std::nullopt;
  RibRoute removed = std::move(*it);
  paths.erase(it);
  if (paths.empty()) routes.erase(pit);
  --shard_sizes_[shard];
  return removed;
}

std::vector<RibRoute> AdjRibIn::paths(const Ipv4Prefix& prefix) const {
  const auto& routes = shards_[pmap_.of(prefix)];
  auto it = routes.find(prefix);
  if (it == routes.end()) return {};
  return it->second;
}

void AdjRibIn::visit(const std::function<void(const RibRoute&)>& fn) const {
  merge_shards(shards_, [&](const auto& entry) {
    for (const auto& route : entry.second) fn(route);
  });
}

std::vector<RibRoute> AdjRibIn::clear() {
  std::vector<RibRoute> removed;
  removed.reserve(size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (auto& [prefix, paths] : shards_[s])
      for (auto& route : paths) removed.push_back(std::move(route));
    shards_[s].clear();
    shard_sizes_[s] = 0;
  }
  // Shard-count independent output order.
  std::sort(removed.begin(), removed.end(),
            [](const RibRoute& a, const RibRoute& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              return a.path_id < b.path_id;
            });
  return removed;
}

std::size_t AdjRibIn::size() const {
  std::size_t total = 0;
  for (std::size_t n : shard_sizes_) total += n;
  return total;
}

std::size_t AdjRibIn::memory_bytes() const {
  // One rb-tree node per prefix (header approximated at 4 pointers) plus
  // the flat path vector's heap block.
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  std::size_t bytes = sizeof(AdjRibIn);
  for (const auto& shard : shards_) {
    for (const auto& [prefix, paths] : shard) {
      bytes += kNodeOverhead + sizeof(Ipv4Prefix) + sizeof(paths);
      bytes += paths.capacity() * sizeof(RibRoute);
    }
  }
  return bytes;
}

int select_best_path(
    const std::vector<RibRoute>& candidates,
    const std::function<PeerDecisionInfo(PeerId)>& peer_info) {
  int best = -1;
  PeerDecisionInfo best_info;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const RibRoute& cand = candidates[static_cast<std::size_t>(i)];
    if (!cand.valid()) continue;
    PeerDecisionInfo cand_info = peer_info(cand.peer);
    if (best < 0) {
      best = i;
      best_info = cand_info;
      continue;
    }
    const PathAttributes& b = *candidates[static_cast<std::size_t>(best)].attrs;
    const PathAttributes& c = *cand.attrs;

    // 1. Highest LOCAL_PREF (default 100).
    std::uint32_t blp = b.local_pref.value_or(100);
    std::uint32_t clp = c.local_pref.value_or(100);
    if (clp != blp) {
      if (clp > blp) { best = i; best_info = cand_info; }
      continue;
    }
    // 2. Shortest AS_PATH.
    std::size_t bal = b.as_path.decision_length();
    std::size_t cal = c.as_path.decision_length();
    if (cal != bal) {
      if (cal < bal) { best = i; best_info = cand_info; }
      continue;
    }
    // 3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
    if (c.origin != b.origin) {
      if (c.origin < b.origin) { best = i; best_info = cand_info; }
      continue;
    }
    // 4. Lowest MED, only comparable between routes from the same
    //    neighboring AS (missing MED treated as 0 per common practice).
    if (c.as_path.first() == b.as_path.first()) {
      std::uint32_t bmed = b.med.value_or(0);
      std::uint32_t cmed = c.med.value_or(0);
      if (cmed != bmed) {
        if (cmed < bmed) { best = i; best_info = cand_info; }
        continue;
      }
    }
    // 5. Prefer eBGP over iBGP.
    if (cand_info.ibgp != best_info.ibgp) {
      if (!cand_info.ibgp) { best = i; best_info = cand_info; }
      continue;
    }
    // 6. Lowest router id.
    if (cand_info.router_id != best_info.router_id) {
      if (cand_info.router_id < best_info.router_id) {
        best = i;
        best_info = cand_info;
      }
      continue;
    }
    // 7. Lowest peer address.
    if (cand_info.peer_address < best_info.peer_address) {
      best = i;
      best_info = cand_info;
    }
  }
  return best;
}

LocRib::LocRib(std::function<PeerDecisionInfo(PeerId)> peer_info,
               exec::PartitionMap pmap)
    : peer_info_(std::move(peer_info)),
      pmap_(pmap),
      shards_(pmap.partitions()),
      route_counts_(pmap.partitions(), 0) {}

bool LocRib::update(const RibRoute& route) {
  std::uint32_t shard = pmap_.of(route.prefix);
  auto& state = shards_[shard][route.prefix];
  bool found = false;
  for (auto& cand : state.candidates) {
    if (cand.peer == route.peer && cand.path_id == route.path_id) {
      cand = route;
      found = true;
      break;
    }
  }
  if (!found) {
    state.candidates.push_back(route);
    ++route_counts_[shard];
  }
  return reselect(route.prefix, state);
}

bool LocRib::withdraw(const Ipv4Prefix& prefix, PeerId peer,
                      std::uint32_t path_id) {
  std::uint32_t shard = pmap_.of(prefix);
  auto& prefixes = shards_[shard];
  auto it = prefixes.find(prefix);
  if (it == prefixes.end()) return false;
  auto& cands = it->second.candidates;
  auto removed = std::remove_if(cands.begin(), cands.end(),
                                [&](const RibRoute& r) {
                                  return r.peer == peer && r.path_id == path_id;
                                });
  if (removed == cands.end()) return false;
  route_counts_[shard] -= static_cast<std::size_t>(cands.end() - removed);
  cands.erase(removed, cands.end());
  if (cands.empty()) {
    prefixes.erase(it);
    return true;  // best existed, now gone
  }
  return reselect(prefix, it->second);
}

bool LocRib::reselect(const Ipv4Prefix& prefix, PrefixState& state) {
  (void)prefix;
  RibRoute old_best;
  bool had_best = state.best >= 0 &&
                  state.best < static_cast<int>(state.candidates.size());
  if (had_best) old_best = state.candidates[static_cast<std::size_t>(state.best)];
  state.best = select_best_path(state.candidates, peer_info_);
  if (!had_best) return state.best >= 0;
  if (state.best < 0) return true;
  const RibRoute& now = state.candidates[static_cast<std::size_t>(state.best)];
  return now.peer != old_best.peer || now.path_id != old_best.path_id ||
         now.attrs != old_best.attrs;
}

std::optional<RibRoute> LocRib::best(const Ipv4Prefix& prefix) const {
  const auto& prefixes = shards_[pmap_.of(prefix)];
  auto it = prefixes.find(prefix);
  if (it == prefixes.end() || it->second.best < 0) return std::nullopt;
  return it->second.candidates[static_cast<std::size_t>(it->second.best)];
}

std::vector<RibRoute> LocRib::candidates(const Ipv4Prefix& prefix) const {
  const auto& prefixes = shards_[pmap_.of(prefix)];
  auto it = prefixes.find(prefix);
  if (it == prefixes.end()) return {};
  return it->second.candidates;
}

const std::vector<RibRoute>* LocRib::candidates_ref(
    const Ipv4Prefix& prefix) const {
  const auto& prefixes = shards_[pmap_.of(prefix)];
  auto it = prefixes.find(prefix);
  if (it == prefixes.end()) return nullptr;
  return &it->second.candidates;
}

void LocRib::visit_best(const std::function<void(const RibRoute&)>& fn) const {
  merge_shards(shards_, [&](const auto& entry) {
    const PrefixState& state = entry.second;
    if (state.best >= 0)
      fn(state.candidates[static_cast<std::size_t>(state.best)]);
  });
}

void LocRib::visit_all(const std::function<void(const RibRoute&)>& fn) const {
  merge_shards(shards_, [&](const auto& entry) {
    for (const auto& cand : entry.second.candidates) fn(cand);
  });
}

std::size_t LocRib::prefix_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

std::size_t LocRib::route_count() const {
  std::size_t total = 0;
  for (std::size_t n : route_counts_) total += n;
  return total;
}

std::size_t LocRib::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  std::size_t bytes = sizeof(LocRib);
  for (const auto& shard : shards_) {
    for (const auto& [prefix, state] : shard) {
      bytes += kNodeOverhead + sizeof(Ipv4Prefix) + sizeof(PrefixState);
      bytes += state.candidates.capacity() * sizeof(RibRoute);
    }
  }
  return bytes;
}

}  // namespace peering::bgp
