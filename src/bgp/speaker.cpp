#include "bgp/speaker.h"

#include <algorithm>

#include "netbase/log.h"

namespace peering::bgp {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "Idle";
    case SessionState::kOpenSent:
      return "OpenSent";
    case SessionState::kOpenConfirm:
      return "OpenConfirm";
    case SessionState::kEstablished:
      return "Established";
  }
  return "?";
}

/// An advertisement currently installed in the Adj-RIB-Out toward a peer.
struct OutRoute {
  PeerId origin_peer = 0;
  std::uint32_t origin_path_id = 0;
  AttrsPtr attrs;
};

struct BgpSpeaker::Session {
  PeerConfig config;
  PeerStats stats;
  SessionState state = SessionState::kIdle;
  std::shared_ptr<sim::StreamEndpoint> stream;
  MessageDecoder decoder;
  UpdateCodecOptions tx_options;
  bool addpath_tx = false;
  bool addpath_rx = false;
  bool open_received = false;
  Ipv4Address peer_router_id;
  std::uint16_t negotiated_hold = 90;
  AdjRibIn adj_in;

  /// Adj-RIB-Out: prefix -> local path id -> what we advertised. Hashed on
  /// the prefix: encode probes it once per advert and nothing needs
  /// prefix order (full-table walks dump into a sorted vector first).
  std::unordered_map<Ipv4Prefix, std::map<std::uint32_t, OutRoute>> adj_out;
  /// Local path-id allocation per prefix, keyed by origin (peer, path id).
  std::unordered_map<Ipv4Prefix,
                     std::map<std::pair<PeerId, std::uint32_t>, std::uint32_t>>
      out_ids;
  std::uint32_t next_out_id = 1;

  /// MRAI batching state: the bounded per-peer export queue the encode
  /// stage drains. Appended without dedup (encode sorts and uniques);
  /// overflow discards the delta log and the next flush reevaluates the
  /// whole table against the Adj-RIB-Out instead.
  exec::OverflowBatch<Ipv4Prefix> pending_export;
  bool flush_scheduled = false;
  SimTime flush_at;
  SimTime next_flush_allowed;

  /// Timer generations: a scheduled callback fires only if its generation
  /// still matches (reset/restart invalidates stale timers).
  std::uint64_t hold_gen = 0;
  std::uint64_t keepalive_gen = 0;

  /// Per-peer telemetry handles (shared no-ops when telemetry is off).
  obs::Counter* obs_updates_in = obs::Registry::nop_counter();
  obs::Counter* obs_updates_out = obs::Registry::nop_counter();
  /// Lazy hold timer: receiving a message only refreshes the deadline; at
  /// most one expiry check sits in the event queue per session. Without
  /// this, a full-table burst enqueues one 90-second timer per UPDATE and
  /// the event heap drowns in stale no-ops.
  SimTime hold_deadline;
  SimTime hold_check_at;
  bool hold_scheduled = false;
};

BgpSpeaker::BgpSpeaker(sim::EventLoop* loop, std::string name, Asn asn,
                       Ipv4Address router_id, PipelineConfig pipeline)
    : loop_(loop),
      name_(std::move(name)),
      asn_(asn),
      router_id_(router_id),
      pipeline_(pipeline),
      pmap_(pipeline.partitions),
      loc_rib_([this](PeerId p) { return peer_decision_info(p); }, pmap_),
      stage_in_(pmap_.partitions()),
      stage_out_(pmap_.partitions()),
      metrics_(obs::Registry::global()) {
  if (pipeline_.workers > 0) {
    scheduler_ = std::make_unique<exec::Scheduler>(pipeline_.workers);
    // Decision/encode workers intern and serialize through the shared pool.
    attr_pool_.set_concurrent(true);
  }
  obs::Labels labels{{"speaker", name_}};
  obs_updates_in_ = metrics_->counter("bgp_updates_in_total", labels);
  obs_updates_out_ = metrics_->counter("bgp_updates_out_total", labels);
  obs_pipeline_runs_ = metrics_->counter("bgp_pipeline_runs_total", labels);
  for (int i = 0; i < 4; ++i) {
    obs::Labels tl = labels;
    tl.emplace_back("state",
                    session_state_name(static_cast<SessionState>(i)));
    obs_transitions_[i] =
        metrics_->counter("bgp_session_transitions_total", tl);
  }
  update_span_ = obs::SpanMeter(metrics_, "bgp_update_processing", labels);
  collector_token_ = metrics_->add_collector(
      [this](obs::Registry& registry) { publish_metrics(registry); });
}

BgpSpeaker::~BgpSpeaker() { metrics_->remove_collector(collector_token_); }

PeerId BgpSpeaker::add_peer(PeerConfig config) {
  PeerId id = next_peer_id_++;
  auto session = std::make_unique<Session>();
  session->config = std::move(config);
  session->adj_in = AdjRibIn(pmap_);
  session->pending_export.set_capacity(pipeline_.peer_queue_capacity);
  obs::Labels labels{{"speaker", name_}, {"peer", session->config.name}};
  session->obs_updates_in =
      metrics_->counter("bgp_peer_updates_in_total", labels);
  session->obs_updates_out =
      metrics_->counter("bgp_peer_updates_out_total", labels);
  sessions_.emplace(id, std::move(session));
  return id;
}

void BgpSpeaker::note_transition(PeerId peer, SessionState state) {
  obs_transitions_[static_cast<int>(state)]->inc();
  if (session_event_) session_event_(peer, state);
}

PeerConfig& BgpSpeaker::peer_config(PeerId peer) {
  return sessions_.at(peer)->config;
}

const PeerStats& BgpSpeaker::peer_stats(PeerId peer) const {
  return sessions_.at(peer)->stats;
}

SessionState BgpSpeaker::session_state(PeerId peer) const {
  return sessions_.at(peer)->state;
}

bool BgpSpeaker::is_ibgp(PeerId peer) const {
  return sessions_.at(peer)->config.peer_asn == asn_;
}

std::vector<PeerId> BgpSpeaker::peer_ids() const {
  std::vector<PeerId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

const AdjRibIn& BgpSpeaker::adj_rib_in(PeerId peer) const {
  return sessions_.at(peer)->adj_in;
}

std::vector<AttrsPtr> BgpSpeaker::adj_rib_out_attrs(
    PeerId peer, const Ipv4Prefix& prefix) const {
  std::vector<AttrsPtr> out;
  const Session& s = *sessions_.at(peer);
  auto it = s.adj_out.find(prefix);
  if (it == s.adj_out.end()) return out;
  for (const auto& [id, route] : it->second) out.push_back(route.attrs);
  return out;
}

PeerDecisionInfo BgpSpeaker::peer_decision_info(PeerId peer) const {
  PeerDecisionInfo info;
  if (peer == kLocalRoutes) {
    info.ibgp = false;
    info.peer_asn = asn_;
    info.router_id = router_id_;
    return info;
  }
  auto it = sessions_.find(peer);
  if (it == sessions_.end()) return info;
  info.ibgp = it->second->config.peer_asn == asn_;
  info.peer_asn = it->second->config.peer_asn;
  info.peer_address = it->second->config.peer_address;
  info.router_id = it->second->peer_router_id;
  return info;
}

void BgpSpeaker::connect_peer(PeerId peer,
                              std::shared_ptr<sim::StreamEndpoint> stream) {
  Session& s = *sessions_.at(peer);
  s.stream = std::move(stream);
  s.decoder = MessageDecoder();
  s.open_received = false;
  s.stream->on_data([this, peer](const Bytes& data) {
    handle_bytes(peer, data);
  });
  s.stream->on_close([this, peer]() { session_down(peer, "stream closed"); });

  OpenMessage open;
  open.asn = asn_;
  open.hold_time = s.config.hold_time;
  open.router_id = router_id_;
  open.add_four_byte_asn(asn_);
  if (s.config.addpath != AddPathMode::kNone)
    open.add_addpath_ipv4(s.config.addpath);
  send_message(peer, open);
  s.state = SessionState::kOpenSent;
  obs_transitions_[static_cast<int>(s.state)]->inc();
  arm_hold_timer(peer);
}

void BgpSpeaker::disconnect_peer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.state == SessionState::kIdle) return;
  send_notification(peer, NotificationCode::kCease, 2, "admin shutdown");
  session_down(peer, "admin shutdown");
}

void BgpSpeaker::handle_bytes(PeerId peer, const Bytes& data) {
  Session& s = *sessions_.at(peer);
  s.decoder.feed(data);
  while (true) {
    auto result = s.decoder.poll();
    if (!result) {
      LOG_WARN("bgp", name_ << ": decode error from " << s.config.name << ": "
                            << result.error().message);
      send_notification(peer, NotificationCode::kMessageHeaderError,
                        static_cast<std::uint8_t>(result.error().code),
                        result.error().message);
      session_down(peer, "decode error");
      return;
    }
    if (!result->has_value()) break;
    handle_message(peer, std::move(**result));
    // The session may have gone down while handling the message (which
    // drains the pipeline before tearing state down).
    if (sessions_.at(peer)->state == SessionState::kIdle) return;
  }
  // Event-granularity barrier: everything this delivery staged is decided,
  // applied, and scheduled for export before the event returns.
  drain_pipeline();
}

void BgpSpeaker::handle_message(PeerId peer, BgpMessage message) {
  arm_hold_timer(peer);
  if (auto* update = std::get_if<UpdateMessage>(&message)) {
    handle_update(peer, *update);
    return;
  }
  // Non-UPDATE messages observe RIB state: flush staged route work first so
  // e.g. a NOTIFICATION-triggered teardown sees every preceding UPDATE
  // applied, exactly as in the serial message-at-a-time ordering.
  drain_pipeline();
  if (auto* open = std::get_if<OpenMessage>(&message)) {
    handle_open(peer, *open);
  } else if (auto* notification = std::get_if<NotificationMessage>(&message)) {
    handle_notification(peer, *notification);
  } else if (std::get_if<RouteRefreshMessage>(&message)) {
    // RFC 2918: the peer asks for our full Adj-RIB-Out again (typically
    // after changing its import policy). Force a complete resend: the
    // peer re-applies policy to routes that are unchanged on our side.
    Session& s = *sessions_.at(peer);
    if (s.state == SessionState::kEstablished) {
      for (auto& [prefix, by_id] : s.adj_out)
        for (auto& [id, out] : by_id) out.attrs.reset();
      reevaluate_exports(peer);
    }
  } else {
    handle_keepalive(peer);
  }
}

void BgpSpeaker::request_refresh(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  send_message(peer, RouteRefreshMessage{});
}

void BgpSpeaker::reevaluate_exports(PeerId peer) {
  drain_pipeline();
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  // Re-run export computation for every prefix we know about; the encode
  // stage diffs against the Adj-RIB-Out, so only real changes hit the wire.
  loc_rib_.visit_all(
      [&](const RibRoute& route) { s.pending_export.push(route.prefix); });
  for (const auto& [prefix, out] : s.adj_out) s.pending_export.push(prefix);
  schedule_flush(peer, /*immediate=*/true);
}

void BgpSpeaker::handle_open(PeerId peer, const OpenMessage& open) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kOpenSent) {
    send_notification(peer, NotificationCode::kFsmError, 0,
                      "OPEN in unexpected state");
    session_down(peer, "unexpected OPEN");
    return;
  }

  Asn remote_asn = open.four_byte_asn().value_or(open.asn);
  if (s.config.peer_asn != 0 && remote_asn != s.config.peer_asn) {
    send_notification(peer, NotificationCode::kOpenMessageError, 2,
                      "bad peer AS");
    session_down(peer, "bad peer AS");
    return;
  }
  if (s.config.peer_asn == 0) s.config.peer_asn = remote_asn;
  s.peer_router_id = open.router_id;
  s.negotiated_hold = std::min(s.config.hold_time, open.hold_time);

  // ADD-PATH negotiation (RFC 7911 §4): we send path ids iff we advertised
  // send and the peer advertised receive, and vice versa.
  AddPathMode local = s.config.addpath;
  AddPathMode remote = open.addpath_ipv4();
  auto has_send = [](AddPathMode m) {
    return m == AddPathMode::kSend || m == AddPathMode::kBoth;
  };
  auto has_recv = [](AddPathMode m) {
    return m == AddPathMode::kReceive || m == AddPathMode::kBoth;
  };
  s.addpath_tx = has_send(local) && has_recv(remote);
  s.addpath_rx = has_recv(local) && has_send(remote);

  // Both ends of this implementation always advertise 4-byte ASN support;
  // fall back to 2-byte encoding when the remote does not.
  bool four_byte = open.four_byte_asn().has_value();
  s.tx_options.attrs.four_byte_asn = four_byte;
  s.tx_options.add_path = s.addpath_tx;
  UpdateCodecOptions rx_options;
  rx_options.attrs.four_byte_asn = four_byte;
  rx_options.add_path = s.addpath_rx;
  s.decoder.set_options(rx_options);

  s.open_received = true;
  send_message(peer, KeepaliveMessage{});
  s.state = SessionState::kOpenConfirm;
  note_transition(peer, s.state);
}

void BgpSpeaker::handle_keepalive(PeerId peer) {
  Session& s = *sessions_.at(peer);
  ++s.stats.keepalives_received;
  if (s.state == SessionState::kOpenConfirm) {
    session_established(peer);
  }
}

void BgpSpeaker::session_established(PeerId peer) {
  Session& s = *sessions_.at(peer);
  s.state = SessionState::kEstablished;
  arm_keepalive_timer(peer);
  LOG_INFO("bgp", name_ << ": session with " << s.config.name
                        << " established (addpath tx=" << s.addpath_tx
                        << " rx=" << s.addpath_rx << ")");
  metrics_->trace().emit(loop_->now(), "bgp", "session_up",
                         {{"speaker", name_}, {"peer", s.config.name}});
  note_transition(peer, s.state);
  send_initial_table(peer);
}

void BgpSpeaker::handle_notification(PeerId peer,
                                     const NotificationMessage& msg) {
  Session& s = *sessions_.at(peer);
  ++s.stats.notifications_received;
  LOG_WARN("bgp", name_ << ": NOTIFICATION from " << s.config.name << ": "
                        << msg.str());
  session_down(peer, "notification received: " + msg.str());
}

void BgpSpeaker::handle_update(PeerId peer, const UpdateMessage& update) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) {
    send_notification(peer, NotificationCode::kFsmError, 0,
                      "UPDATE before Established");
    session_down(peer, "early UPDATE");
    return;
  }
  ++s.stats.updates_received;
  ++total_updates_rx_;
  obs_updates_in_->inc();
  s.obs_updates_in->inc();
  obs::Span span(update_span_, nullptr);  // wall-clock CPU cost per UPDATE
  stage_update(peer, update);
}

void BgpSpeaker::inject_update(PeerId peer, const UpdateMessage& update) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  ++s.stats.updates_received;
  ++total_updates_rx_;
  obs_updates_in_->inc();
  s.obs_updates_in->inc();
  stage_update(peer, update);
}

void BgpSpeaker::stage_update(PeerId peer, const UpdateMessage& update) {
  for (const auto& entry : update.withdrawn) stage_route(peer, entry, nullptr);
  if (update.attributes) {
    // Intern once per UPDATE: every NLRI shares the AttrsPtr, repeated
    // announcements of the same set hit the pool, and downstream
    // pointer-keyed caches (vBGP's next-hop rewrite memo) get a stable key.
    AttrsPtr attrs = attr_pool_.intern(*update.attributes);
    for (const auto& entry : update.nlri) stage_route(peer, entry, attrs);
  }
}

void BgpSpeaker::stage_route(PeerId from, const NlriEntry& entry,
                             AttrsPtr attrs) {
  stage_in_[pmap_.of(entry.prefix)].push_back(
      RouteWork{from, entry, std::move(attrs)});
  ++stage_pending_;
}

void BgpSpeaker::drain_pipeline() {
  if (stage_pending_ == 0 || in_pipeline_) return;
  in_pipeline_ = true;
  const std::uint32_t n = pmap_.partitions();
  // Seeded visit order: deterministic per (seed, epoch), and deliberately
  // not ascending so nothing comes to depend on partition index order.
  auto order =
      exec::seeded_order(n, exec::mix64(pipeline_.seed ^ ++pipeline_epoch_));

  // Decision stage. Parallel only when a worker pool exists and any
  // installed import hook is declared thread-safe.
  const bool parallel = scheduler_ != nullptr &&
                        (!import_hook_ || import_hook_thread_safe_) && n > 1;
  if (parallel) {
    scheduler_->parallel_for(
        n, [this](std::size_t p) {
          process_partition(static_cast<std::uint32_t>(p));
        });
  } else {
    for (std::uint32_t p : order) process_partition(p);
  }
  stage_pending_ = 0;

  // Serial effect application in the seeded partition order: per-peer
  // stats, route events, export fan-out. Totals are order-independent;
  // the fixed order keeps event sequences reproducible.
  for (std::uint32_t p : order) {
    PartitionOut& out = stage_out_[p];
    for (PeerId rejected : out.rejects)
      ++sessions_.at(rejected)->stats.routes_rejected_import;
    for (RouteEffect& effect : out.effects) {
      if (route_event_) route_event_(effect.route, effect.withdrawn);
      for (auto& [to, session] : sessions_) {
        if (to == effect.route.peer) continue;
        schedule_export(to, effect.route.prefix);
      }
    }
    out.effects.clear();
    out.rejects.clear();
  }
  obs_pipeline_runs_->inc();
  in_pipeline_ = false;
}

void BgpSpeaker::process_partition(std::uint32_t part) {
  auto& work = stage_in_[part];
  PartitionOut& out = stage_out_[part];
  for (RouteWork& w : work) {
    if (w.attrs) {
      decide_import(part, w, out);
    } else {
      decide_withdraw(w.from, w.entry, out);
    }
  }
  work.clear();
}

void BgpSpeaker::decide_import(std::uint32_t part, RouteWork& work,
                               PartitionOut& out) {
  (void)part;
  PeerId from = work.from;
  Session& s = *sessions_.at(from);
  const bool ibgp = s.config.peer_asn == asn_;

  // eBGP loop detection: drop routes carrying our own ASN.
  if (!ibgp && !s.config.allow_own_asn_in &&
      work.attrs->as_path.contains(asn_)) {
    out.rejects.push_back(from);
    return;
  }

  AttrBuilder builder(work.attrs);
  if (!s.config.import_policy.apply(work.entry.prefix, builder)) {
    out.rejects.push_back(from);
    // An implicit withdraw may be needed if a previous version was accepted.
    decide_withdraw(from, work.entry, out);
    return;
  }
  // Hand the hook an uninterned candidate and intern only its final answer:
  // when the hook rewrites the set (the vBGP next-hop case), the
  // intermediate policy result never pays for a pool insertion.
  AttrsPtr working;
  if (import_hook_) {
    auto hooked = import_hook_(from, work.entry, builder.release());
    if (!hooked) {
      out.rejects.push_back(from);
      decide_withdraw(from, work.entry, out);
      return;
    }
    working = attr_pool_.adopt(*hooked);
  } else {
    working = builder.commit(attr_pool_);
  }

  RibRoute route;
  route.prefix = work.entry.prefix;
  route.path_id = work.entry.path_id;
  route.peer = from;
  route.attrs = std::move(working);

  if (!s.adj_in.update(route)) return;  // no change
  loc_rib_.update(route);
  out.effects.push_back(RouteEffect{std::move(route), /*withdrawn=*/false});
}

void BgpSpeaker::decide_withdraw(PeerId from, const NlriEntry& entry,
                                 PartitionOut& out) {
  Session& s = *sessions_.at(from);
  auto removed = s.adj_in.withdraw(entry.prefix, entry.path_id);
  if (!removed) return;
  loc_rib_.withdraw(entry.prefix, from, entry.path_id);
  out.effects.push_back(RouteEffect{std::move(*removed), /*withdrawn=*/true});
}

void BgpSpeaker::originate(const Ipv4Prefix& prefix, PathAttributes attrs) {
  drain_pipeline();
  RibRoute route;
  route.prefix = prefix;
  route.path_id = 0;
  route.peer = kLocalRoutes;
  route.attrs = attr_pool_.intern(std::move(attrs));
  originated_[prefix] = route.attrs;
  loc_rib_.update(route);
  if (route_event_) route_event_(route, /*withdrawn=*/false);
  for (auto& [to, session] : sessions_) schedule_export(to, prefix);
}

void BgpSpeaker::withdraw_originated(const Ipv4Prefix& prefix) {
  drain_pipeline();
  auto it = originated_.find(prefix);
  if (it == originated_.end()) return;
  RibRoute route;
  route.prefix = prefix;
  route.path_id = 0;
  route.peer = kLocalRoutes;
  route.attrs = it->second;
  originated_.erase(it);
  loc_rib_.withdraw(prefix, kLocalRoutes, 0);
  if (route_event_) route_event_(route, /*withdrawn=*/true);
  for (auto& [to, session] : sessions_) schedule_export(to, prefix);
}

bool BgpSpeaker::standard_export_transform(PeerId to, const RibRoute& route,
                                           AttrBuilder& attrs) const {
  const Session& s = *sessions_.at(to);
  const bool to_ibgp = s.config.peer_asn == asn_;
  const bool from_ibgp =
      route.peer != kLocalRoutes && sessions_.count(route.peer) &&
      sessions_.at(route.peer)->config.peer_asn == asn_;

  // Standard iBGP rule (no route reflection): iBGP-learned routes are not
  // re-advertised to iBGP peers.
  if (to_ibgp && from_ibgp) return false;

  const PathAttributes& view = attrs.view();

  // RFC 1997 well-known communities.
  if (view.has_community(kNoAdvertise)) return false;
  if (!to_ibgp && view.has_community(kNoExport)) return false;

  if (to_ibgp) {
    if (!view.local_pref) attrs.mutate().local_pref = 100;
  } else if (s.config.transparent) {
    // Route-server transparency (RFC 7947 §2.2): no local-AS prepend, the
    // next-hop of the advertising client is preserved — often the whole
    // transform is a no-op and the route keeps its interned pointer.
    if (view.local_pref) attrs.mutate().local_pref.reset();
  } else {
    PathAttributes& m = attrs.mutate();
    m.as_path = m.as_path.prepended(asn_);
    m.local_pref.reset();
    // MED is non-transitive across ASes: drop it when re-advertising a
    // route learned via eBGP, keep it for routes this AS originates.
    if (route.peer != kLocalRoutes && !from_ibgp) m.med.reset();
    m.next_hop = s.config.local_address;
  }
  return true;
}

std::vector<std::pair<std::uint32_t, AttrsPtr>> BgpSpeaker::desired_adverts(
    PeerId to, const Ipv4Prefix& prefix) {
  Session& s = *sessions_.at(to);
  // ADD-PATH sessions export every candidate: borrow the Loc-RIB's own
  // vector instead of copying it (nothing below mutates the RIB — hooks
  // and policies only transform attribute sets).
  const std::vector<RibRoute>* sources = nullptr;
  std::vector<RibRoute> best_only;
  if (s.config.export_all_paths && s.addpath_tx) {
    sources = loc_rib_.candidates_ref(prefix);
  } else {
    auto best = loc_rib_.best(prefix);
    if (best) best_only.push_back(*best);
    sources = &best_only;
  }

  std::vector<std::pair<std::uint32_t, AttrsPtr>> out;
  if (!sources || sources->empty()) {
    s.out_ids.erase(prefix);
    return out;
  }
  auto& ids = s.out_ids[prefix];
  for (const RibRoute& route : *sources) {
    if (route.peer == to) continue;  // split horizon
    AttrBuilder builder(route.attrs);
    if (!standard_export_transform(to, route, builder)) continue;
    if (!s.config.export_policy.apply(prefix, builder)) continue;
    // As on import: intern only the post-hook set, so a hook that replaces
    // the candidate (vBGP's experiment fan-out) never inserts the discarded
    // intermediate into the pool.
    AttrsPtr result;
    if (export_hook_) {
      auto hooked = export_hook_(to, route, builder.release());
      if (!hooked) continue;
      result = attr_pool_.adopt(*hooked);
    } else {
      result = builder.commit(attr_pool_);
    }
    std::uint32_t local_id = 0;
    if (s.addpath_tx) {
      auto key = std::make_pair(route.peer, route.path_id);
      auto it = ids.find(key);
      if (it == ids.end()) it = ids.emplace(key, s.next_out_id++).first;
      local_id = it->second;
    }
    out.emplace_back(local_id, std::move(result));
  }
  if (out.empty()) s.out_ids.erase(prefix);

  if (!s.addpath_tx && out.size() > 1) out.resize(1);
  return out;
}

void BgpSpeaker::schedule_export(PeerId to, const Ipv4Prefix& prefix) {
  Session& s = *sessions_.at(to);
  if (s.state != SessionState::kEstablished) return;
  s.pending_export.push(prefix);
  schedule_flush(to);
}

void BgpSpeaker::schedule_flush(PeerId to, bool immediate) {
  Session& s = *sessions_.at(to);
  if (s.state != SessionState::kEstablished) return;
  if (s.pending_export.empty()) return;
  if (s.flush_scheduled) return;
  s.flush_scheduled = true;

  SimTime now = loop_->now();
  SimTime at = now;
  if (!immediate && s.next_flush_allowed > now) at = s.next_flush_allowed;
  s.flush_at = at;
  auto [it, inserted] = flush_batches_.try_emplace(at);
  it->second.push_back(to);
  // One drain event per distinct flush instant: every peer due then shares
  // the event — and the encode stage's parallel fan-out.
  if (inserted)
    loop_->schedule_at(at, [this, at]() { drain_flush_batch(at); });
}

void BgpSpeaker::drain_flush_batch(SimTime at) {
  auto node = flush_batches_.extract(at);
  if (node.empty()) return;
  std::vector<PeerId> peers = std::move(node.mapped());
  // Ascending peer order — the order the per-peer flush events fired in
  // before batching, and independent of how the batch was filled.
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());

  std::vector<PeerId> due;
  due.reserve(peers.size());
  for (PeerId peer : peers) {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) continue;
    Session& s = *it->second;
    // flush_at distinguishes this batch from a newer one scheduled after a
    // session bounce; stale memberships are simply skipped.
    if (!s.flush_scheduled || s.flush_at != at) continue;
    s.flush_scheduled = false;
    if (s.state != SessionState::kEstablished) continue;
    due.push_back(peer);
  }
  if (due.empty()) return;

  // Encode stage: per-peer Adj-RIB-Out diff + serialization. Sessions are
  // disjoint and the attr pool is concurrent-safe, so peers fan out across
  // the worker pool (unless a non-thread-safe export hook is installed).
  std::vector<EncodeResult> results(due.size());
  const bool parallel = scheduler_ != nullptr && due.size() > 1 &&
                        (!export_hook_ || export_hook_thread_safe_);
  auto encode_one = [&](std::size_t i) {
    results[i] = encode_exports(due[i]);
  };
  if (parallel) {
    scheduler_->parallel_for(due.size(), encode_one);
  } else {
    for (std::size_t i = 0; i < due.size(); ++i) encode_one(i);
  }

  // Serial transmit + stats, ascending peer order: one coalesced stream
  // send per peer (the decoder reassembles message-by-message).
  for (std::size_t i = 0; i < due.size(); ++i) {
    Session& s = *sessions_.at(due[i]);
    EncodeResult& r = results[i];
    if (s.config.mrai > Duration::nanos(0))
      s.next_flush_allowed = loop_->now() + s.config.mrai;
    if (!r.wire.empty() && s.stream && s.stream->open())
      s.stream->send(std::move(r.wire));
    s.stats.updates_sent += r.updates;
    total_updates_tx_ += r.updates;
    s.stats.attr_encode_cache_hits += r.cache_hits;
    s.stats.attr_encode_cache_misses += r.cache_misses;
    if (r.updates > 0) {
      obs_updates_out_->add(r.updates);
      s.obs_updates_out->add(r.updates);
    }
  }
}

BgpSpeaker::EncodeResult BgpSpeaker::encode_exports(PeerId to) {
  Session& s = *sessions_.at(to);
  EncodeResult r;

  std::vector<Ipv4Prefix> prefixes;
  if (s.pending_export.overflowed()) {
    // The bounded delta log gave up: reevaluate the full table (every
    // Loc-RIB prefix plus everything currently advertised, so stale
    // adverts are withdrawn too).
    loc_rib_.visit_all(
        [&](const RibRoute& route) { prefixes.push_back(route.prefix); });
    for (const auto& [prefix, out] : s.adj_out) prefixes.push_back(prefix);
    s.pending_export.clear();
  } else {
    prefixes = s.pending_export.take();
  }
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());

  const bool stream_open = s.stream && s.stream->open();
  std::vector<NlriEntry> withdrawals;

  for (const Ipv4Prefix& prefix : prefixes) {
    auto desired = desired_adverts(to, prefix);
    auto& current = s.adj_out[prefix];

    // Withdraw adverts that are no longer desired.
    for (auto it = current.begin(); it != current.end();) {
      bool still = false;
      for (const auto& [id, attrs] : desired) {
        if (id == it->first) {
          still = true;
          break;
        }
      }
      if (!still) {
        withdrawals.push_back({it->first, prefix});
        it = current.erase(it);
      } else {
        ++it;
      }
    }

    // Advertise new/changed paths (one UPDATE per path; production
    // implementations batch by shared attributes). Unchanged adverts are
    // detected by pointer identity — interned sets compare in O(1).
    for (const auto& [id, attrs] : desired) {
      auto it = current.find(id);
      if (it != current.end() && it->second.attrs == attrs) continue;
      current[id] = OutRoute{0, 0, attrs};
      if (stream_open) {
        bool hit = false;
        const Bytes& attr_bytes =
            attr_pool_.encoded(attrs, s.tx_options.attrs, &hit);
        if (hit)
          ++r.cache_hits;
        else
          ++r.cache_misses;
        std::vector<NlriEntry> nlri{{id, prefix}};
        Bytes msg = encode_update_from_cached(attr_bytes, nlri, s.tx_options);
        r.wire.insert(r.wire.end(), msg.begin(), msg.end());
      }
      ++r.updates;
    }
    if (current.empty()) s.adj_out.erase(prefix);
  }

  if (!withdrawals.empty()) {
    UpdateMessage update;
    update.withdrawn = std::move(withdrawals);
    if (stream_open) {
      Bytes msg = encode_message(update, s.tx_options);
      r.wire.insert(r.wire.end(), msg.begin(), msg.end());
    }
    ++r.updates;
  }
  return r;
}

void BgpSpeaker::send_initial_table(PeerId to) {
  Session& s = *sessions_.at(to);
  loc_rib_.visit_all(
      [&](const RibRoute& route) { s.pending_export.push(route.prefix); });
  schedule_flush(to, /*immediate=*/true);
}

void BgpSpeaker::send_message(PeerId peer, const BgpMessage& message) {
  Session& s = *sessions_.at(peer);
  if (!s.stream || !s.stream->open()) return;
  s.stream->send(encode_message(message, s.tx_options));
}

void BgpSpeaker::send_notification(PeerId peer, NotificationCode code,
                                   std::uint8_t subcode,
                                   const std::string& reason) {
  Session& s = *sessions_.at(peer);
  NotificationMessage msg;
  msg.code = code;
  msg.subcode = subcode;
  msg.data.assign(reason.begin(), reason.end());
  send_message(peer, msg);
  ++s.stats.notifications_sent;
}

void BgpSpeaker::arm_hold_timer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.negotiated_hold == 0) {  // hold timer disabled
    ++s.hold_gen;
    s.hold_scheduled = false;
    return;
  }
  s.hold_deadline = loop_->now() + Duration::seconds(s.negotiated_hold);
  // A pending check that fires at or after the deadline honors the refresh
  // by chasing. A check queued for *later* than the new deadline cannot —
  // that happens when OPEN negotiation shrinks the hold time below the
  // pre-negotiation default — so supersede it with an earlier one.
  if (s.hold_scheduled && s.hold_check_at <= s.hold_deadline) return;
  s.hold_scheduled = true;
  schedule_hold_check(peer, ++s.hold_gen);
}

void BgpSpeaker::schedule_hold_check(PeerId peer, std::uint64_t gen) {
  Session& s = *sessions_.at(peer);
  s.hold_check_at = s.hold_deadline;
  loop_->schedule_at(s.hold_deadline, [this, peer, gen]() {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    if (session.hold_gen != gen || session.state == SessionState::kIdle)
      return;
    if (loop_->now() < session.hold_deadline) {
      // Traffic arrived since this check was queued: chase the new deadline.
      schedule_hold_check(peer, gen);
      return;
    }
    session.hold_scheduled = false;
    send_notification(peer, NotificationCode::kHoldTimerExpired, 0,
                      "hold timer expired");
    session_down(peer, "hold timer expired");
  });
}

void BgpSpeaker::arm_keepalive_timer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  std::uint64_t gen = ++s.keepalive_gen;
  Duration interval = Duration::seconds(std::max<int>(1, s.negotiated_hold / 3));
  loop_->schedule_after(interval, [this, peer, gen]() {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    if (session.keepalive_gen != gen ||
        session.state != SessionState::kEstablished)
      return;
    send_message(peer, KeepaliveMessage{});
    arm_keepalive_timer(peer);
  });
}

void BgpSpeaker::session_down(PeerId peer, const std::string& reason) {
  // Apply anything the dying session's last messages staged before tearing
  // its state down — otherwise the clear below would race stale work.
  drain_pipeline();
  Session& s = *sessions_.at(peer);
  if (s.state == SessionState::kIdle) return;
  LOG_INFO("bgp", name_ << ": session with " << s.config.name << " down: "
                        << reason);
  s.state = SessionState::kIdle;
  ++s.hold_gen;
  ++s.keepalive_gen;
  s.hold_scheduled = false;
  if (s.stream) {
    s.stream->close();
    s.stream.reset();
  }
  s.adj_out.clear();
  s.out_ids.clear();
  s.pending_export.clear();
  s.flush_scheduled = false;

  // Withdraw everything learned from this peer.
  auto removed = s.adj_in.clear();
  std::set<Ipv4Prefix> affected;
  for (const RibRoute& route : removed) {
    loc_rib_.withdraw(route.prefix, peer, route.path_id);
    affected.insert(route.prefix);
    if (route_event_) route_event_(route, /*withdrawn=*/true);
  }
  for (const auto& prefix : affected) {
    for (auto& [to, session] : sessions_) {
      if (to == peer) continue;
      schedule_export(to, prefix);
    }
  }
  // The churned-out table may have been the last reference to many pooled
  // attribute sets (and their cached encodings); release them now so a
  // flapping session does not leave the pool inflated. `removed` still
  // pins them, so drop it first or the sweep frees nothing.
  removed.clear();
  attr_pool_.sweep();
  metrics_->trace().emit(
      loop_->now(), "bgp", "session_down",
      {{"speaker", name_}, {"peer", s.config.name}, {"reason", reason}});
  note_transition(peer, SessionState::kIdle);
}

std::size_t BgpSpeaker::memory_bytes() const {
  std::size_t bytes = attr_pool_.memory_bytes() + loc_rib_.memory_bytes();
  for (const auto& [id, session] : sessions_)
    bytes += session->adj_in.memory_bytes();
  bytes += originated_.size() * (sizeof(Ipv4Prefix) + sizeof(AttrsPtr) +
                                 4 * sizeof(void*));
  return bytes;
}

void BgpSpeaker::publish_metrics(obs::Registry& registry) const {
  auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs::Labels labels{{"speaker", name_}};
  const AttrPool::Stats& pool = attr_pool_.stats();
  registry.gauge("bgp_attr_pool_sets", labels)->set(i64(attr_pool_.size()));
  registry.gauge("bgp_attr_pool_bytes", labels)
      ->set(i64(attr_pool_.memory_bytes()));
  registry.gauge("bgp_attr_encode_cache_bytes", labels)
      ->set(i64(attr_pool_.encode_cache_bytes()));
  registry.gauge("bgp_attr_intern_hits", labels)->set(i64(pool.intern_hits));
  registry.gauge("bgp_attr_intern_misses", labels)
      ->set(i64(pool.intern_misses));
  registry.gauge("bgp_attr_encode_hits", labels)->set(i64(pool.encode_hits));
  registry.gauge("bgp_attr_encode_misses", labels)
      ->set(i64(pool.encode_misses));
  registry.gauge("bgp_locrib_prefixes", labels)
      ->set(i64(loc_rib_.prefix_count()));
  registry.gauge("bgp_locrib_paths", labels)->set(i64(loc_rib_.route_count()));
  registry.gauge("bgp_memory_bytes", labels)->set(i64(memory_bytes()));
  registry.gauge("bgp_pipeline_partitions", labels)
      ->set(static_cast<std::int64_t>(pmap_.partitions()));
  registry.gauge("bgp_pipeline_workers", labels)
      ->set(static_cast<std::int64_t>(pipeline_.workers));

  for (const auto& [id, session] : sessions_) {
    (void)id;
    const Session& s = *session;
    obs::Labels peer_labels = labels;
    peer_labels.emplace_back("peer", s.config.name);
    registry.gauge("bgp_peer_session_up", peer_labels)
        ->set(s.state == SessionState::kEstablished ? 1 : 0);
    registry.gauge("bgp_peer_routes_rejected_import", peer_labels)
        ->set(i64(s.stats.routes_rejected_import));
    registry.gauge("bgp_peer_keepalives_in", peer_labels)
        ->set(i64(s.stats.keepalives_received));
    registry.gauge("bgp_peer_notifications_in", peer_labels)
        ->set(i64(s.stats.notifications_received));
    registry.gauge("bgp_peer_notifications_out", peer_labels)
        ->set(i64(s.stats.notifications_sent));
    registry.gauge("bgp_peer_encode_cache_hits", peer_labels)
        ->set(i64(s.stats.attr_encode_cache_hits));
    registry.gauge("bgp_peer_encode_cache_misses", peer_labels)
        ->set(i64(s.stats.attr_encode_cache_misses));
    registry.gauge("bgp_peer_adj_rib_in_routes", peer_labels)
        ->set(i64(s.adj_in.size()));
  }
}

}  // namespace peering::bgp
