#include "bgp/speaker.h"

#include <algorithm>

#include "netbase/log.h"

namespace peering::bgp {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "Idle";
    case SessionState::kOpenSent:
      return "OpenSent";
    case SessionState::kOpenConfirm:
      return "OpenConfirm";
    case SessionState::kEstablished:
      return "Established";
  }
  return "?";
}

/// Next-hop placeholder the group-level export transform writes into eBGP
/// templates; members splice their own address over it at send time. Must
/// be non-zero: a zero next-hop would be omitted from the encoded template
/// entirely, leaving nothing to patch.
const Ipv4Address kNhPlaceholder(255, 255, 255, 255);

/// An advertisement currently installed in the Adj-RIB-Out toward a peer:
/// the shared group template plus the final (post-splice) next-hop that
/// actually went on the wire.
struct OutRoute {
  PeerId origin_peer = 0;
  std::uint32_t origin_path_id = 0;
  AttrsPtr attrs;
  Ipv4Address next_hop;
};

/// One (prefix, origin) delta in a group's export log. Split horizon is a
/// member-level concern: each member skips entries whose origin is itself.
struct GroupLogEntry {
  Ipv4Prefix prefix;
  PeerId origin = 0;
};

struct BgpSpeaker::Session {
  PeerConfig config;
  PeerStats stats;
  SessionState state = SessionState::kIdle;
  std::shared_ptr<sim::StreamEndpoint> stream;
  MessageDecoder decoder;
  UpdateCodecOptions tx_options;
  bool addpath_tx = false;
  bool addpath_rx = false;
  bool open_received = false;
  Ipv4Address peer_router_id;
  std::uint16_t negotiated_hold = 90;
  AdjRibIn adj_in;

  /// Adj-RIB-Out bookkeeping for one prefix: one entry per local path id
  /// ever allocated, holding both the origin key (for RFC 7911 id-stable
  /// reallocation) and the currently advertised state. A withdrawn path
  /// keeps its entry with active=false so a re-advertisement of the same
  /// origin path reuses its local id. One flat vector — a prefix carries a
  /// handful of paths, so linear scans beat node-based maps and their
  /// per-entry allocations. Entries stay sorted by ascending local id: ids
  /// are allocated monotonically, so new entries append at the back.
  struct OutPath {
    PeerId origin = 0;
    std::uint32_t origin_path_id = 0;
    std::uint32_t local_id = 0;
    bool active = false;
    OutRoute route;
  };
  struct PrefixOut {
    std::vector<OutPath> paths;
  };
  /// Hashed on the prefix: encode probes it once per prefix and nothing
  /// needs prefix order (full-table walks dump into a sorted vector first).
  std::unordered_map<Ipv4Prefix, PrefixOut> adj_out;
  std::uint32_t next_out_id = 1;

  /// Export-group membership: the group this established session belongs
  /// to (0 = none), the member's cursor into the group's delta log, and
  /// whether the next flush must reevaluate the full table (initial sync,
  /// refresh, rejoin after migration, or cursor lost to log trimming).
  std::uint64_t group = 0;
  std::uint64_t group_cursor = 0;
  bool needs_full = false;
  /// Export-hook class registered via set_peer_export_class (0 = opaque).
  std::uint64_t export_class = 0;
  bool flush_scheduled = false;
  SimTime flush_at;
  SimTime next_flush_allowed;

  /// Timer generations: a scheduled callback fires only if its generation
  /// still matches (reset/restart invalidates stale timers).
  std::uint64_t hold_gen = 0;
  std::uint64_t keepalive_gen = 0;

  /// Per-peer telemetry handles (shared no-ops when telemetry is off).
  obs::Counter* obs_updates_in = obs::Registry::nop_counter();
  obs::Counter* obs_updates_out = obs::Registry::nop_counter();
  /// Lazy hold timer: receiving a message only refreshes the deadline; at
  /// most one expiry check sits in the event queue per session. Without
  /// this, a full-table burst enqueues one 90-second timer per UPDATE and
  /// the event heap drowns in stale no-ops.
  SimTime hold_deadline;
  SimTime hold_check_at;
  bool hold_scheduled = false;
};

/// An update group: sessions whose export fingerprints match share one
/// delta log, one policy/hook evaluation per advert, and one encoded
/// template per (advert, codec options). Members diff and transmit
/// individually from per-member cursors into the shared log.
struct BgpSpeaker::ExportGroup {
  std::uint64_t id = 0;
  /// Fingerprint key this group is indexed under in group_by_key_.
  std::uint64_t key = 0;
  /// Members, ascending. The front member is the representative whose
  /// config drives group-level evaluation; join-time content verification
  /// guarantees every member's export identity equals the representative's.
  std::vector<PeerId> members;

  /// Bounded delta log plus the sequence number of its front entry. A
  /// member whose cursor precedes log_base missed trimmed entries and
  /// falls back to a full-table resync.
  std::deque<GroupLogEntry> log;
  std::uint64_t log_base = 0;

  std::uint64_t log_end() const { return log_base + log.size(); }

  /// Per-(source attrs, origin) transform memo: the group-level export
  /// chain is a pure function of those once the policy is
  /// prefix-independent and no export hook is installed. A null result
  /// records suppression. Values pin pool entries, so the speaker clears
  /// every memo before sweeping the pool.
  struct MemoKey {
    const PathAttributes* attrs = nullptr;
    PeerId origin = 0;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const {
      return std::hash<const void*>()(k.attrs) ^
             (static_cast<std::size_t>(k.origin) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct MemoValue {
    AttrsPtr source;  // pins the key pointer
    AttrsPtr result;  // null = suppressed
    bool splice = false;
    std::optional<Ipv4Address> splice_nh;
  };
  std::unordered_map<MemoKey, MemoValue, MemoKeyHash> memo;
  bool memo_enabled = false;
  /// Whether eBGP templates may carry the next-hop placeholder. False only
  /// for singleton groups pinned by an opaque (unregistered) export hook,
  /// which must keep seeing the real per-peer next-hop.
  bool spliceable = true;
  /// Source-driven class (set_source_export_hook): the source attribute
  /// set is the template and `source_hook` picks the spliced next-hop;
  /// transform/policy/general-hook are bypassed.
  bool source_driven = false;
  SourceExportHook source_hook;
};

BgpSpeaker::BgpSpeaker(sim::EventLoop* loop, std::string name, Asn asn,
                       Ipv4Address router_id, PipelineConfig pipeline)
    : loop_(loop),
      name_(std::move(name)),
      asn_(asn),
      router_id_(router_id),
      pipeline_(pipeline),
      pmap_(pipeline.partitions),
      loc_rib_([this](PeerId p) { return peer_decision_info(p); }, pmap_),
      stage_in_(pmap_.partitions()),
      stage_out_(pmap_.partitions()),
      metrics_(obs::Registry::global()) {
  if (pipeline_.workers > 0) {
    scheduler_ = std::make_unique<exec::Scheduler>(pipeline_.workers);
    // Decision/encode workers intern and serialize through the shared pool.
    attr_pool_.set_concurrent(true);
  }
  obs::Labels labels{{"speaker", name_}};
  obs_updates_in_ = metrics_->counter("bgp_updates_in_total", labels);
  obs_updates_out_ = metrics_->counter("bgp_updates_out_total", labels);
  obs_pipeline_runs_ = metrics_->counter("bgp_pipeline_runs_total", labels);
  obs_group_evals_ =
      metrics_->counter("bgp_export_group_evals_total", labels);
  obs_group_memo_hits_ =
      metrics_->counter("bgp_export_group_memo_hits_total", labels);
  obs_group_splices_ =
      metrics_->counter("bgp_export_group_splices_total", labels);
  obs_group_members_ =
      metrics_->histogram("bgp_export_group_members", labels);
  // Pipeline-interior instruments carry the bgp_pipeline_ prefix: they are
  // partition-configuration-dependent and determinism fingerprints exclude
  // that prefix. Export-group instruments are partition-independent.
  obs_stage_depth_ =
      metrics_->histogram("bgp_pipeline_stage_depth", labels);
  obs_flush_batch_ = metrics_->histogram("bgp_mrai_flush_batch", labels);
  obs_group_log_depth_ =
      metrics_->histogram("bgp_export_group_log_depth", labels);
  {
    obs::Labels rl = labels;
    rl.emplace_back("reason", "initial");
    obs_resync_initial_ =
        metrics_->counter("bgp_export_full_resyncs_total", rl);
    rl.back().second = "log_trim";
    obs_resync_log_trim_ =
        metrics_->counter("bgp_export_full_resyncs_total", rl);
  }
  for (int i = 0; i < 4; ++i) {
    obs::Labels tl = labels;
    tl.emplace_back("state",
                    session_state_name(static_cast<SessionState>(i)));
    obs_transitions_[i] =
        metrics_->counter("bgp_session_transitions_total", tl);
  }
  update_span_ = obs::SpanMeter(metrics_, "bgp_update_processing", labels);
  decision_span_ = obs::SpanMeter(metrics_, "bgp_pipeline_decision", labels);
  encode_span_ = obs::SpanMeter(metrics_, "bgp_pipeline_encode", labels);
  collector_token_ = metrics_->add_collector(
      [this](obs::Registry& registry) { publish_metrics(registry); });
}

BgpSpeaker::~BgpSpeaker() { metrics_->remove_collector(collector_token_); }

PeerId BgpSpeaker::add_peer(PeerConfig config) {
  PeerId id = next_peer_id_++;
  auto session = std::make_unique<Session>();
  session->config = std::move(config);
  session->adj_in = AdjRibIn(pmap_);
  obs::Labels labels{{"speaker", name_}, {"peer", session->config.name}};
  session->obs_updates_in =
      metrics_->counter("bgp_peer_updates_in_total", labels);
  session->obs_updates_out =
      metrics_->counter("bgp_peer_updates_out_total", labels);
  sessions_.emplace(id, std::move(session));
  return id;
}

void BgpSpeaker::note_transition(PeerId peer, SessionState state) {
  obs_transitions_[static_cast<int>(state)]->inc();
  if (session_event_) session_event_(peer, state);
  if (monitor_) monitor_->on_peer_state(peer, state);
}

PeerConfig& BgpSpeaker::peer_config(PeerId peer) {
  return sessions_.at(peer)->config;
}

const PeerStats& BgpSpeaker::peer_stats(PeerId peer) const {
  return sessions_.at(peer)->stats;
}

SessionState BgpSpeaker::session_state(PeerId peer) const {
  return sessions_.at(peer)->state;
}

bool BgpSpeaker::is_ibgp(PeerId peer) const {
  return sessions_.at(peer)->config.peer_asn == asn_;
}

std::vector<PeerId> BgpSpeaker::peer_ids() const {
  std::vector<PeerId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

const AdjRibIn& BgpSpeaker::adj_rib_in(PeerId peer) const {
  return sessions_.at(peer)->adj_in;
}

std::vector<AttrsPtr> BgpSpeaker::adj_rib_out_attrs(
    PeerId peer, const Ipv4Prefix& prefix) const {
  std::vector<AttrsPtr> out;
  const Session& s = *sessions_.at(peer);
  auto it = s.adj_out.find(prefix);
  if (it == s.adj_out.end()) return out;
  for (const auto& path : it->second.paths) {
    if (!path.active) continue;
    const OutRoute& route = path.route;
    if (!route.attrs || route.attrs->next_hop == route.next_hop) {
      // Template next-hop is what went on the wire (iBGP, transparent, or
      // splice-disabled): the shared pointer is the advertised set.
      out.push_back(route.attrs);
    } else {
      // Spliced: reconstruct the advertised set from the template plus the
      // member's next-hop. Interned so peers advertising the same set get
      // the same pointer, matching what a full per-peer encode would pool.
      PathAttributes advertised = *route.attrs;
      advertised.next_hop = route.next_hop;
      out.push_back(const_cast<BgpSpeaker*>(this)->attr_pool_.intern(
          std::move(advertised)));
    }
  }
  return out;
}

std::vector<BgpSpeaker::AdjOutEntry> BgpSpeaker::adj_rib_out(
    PeerId peer) const {
  std::vector<AdjOutEntry> out;
  const Session& s = *sessions_.at(peer);
  for (const auto& [prefix, po] : s.adj_out) {
    for (const auto& path : po.paths) {
      if (!path.active) continue;
      out.push_back(AdjOutEntry{prefix, path.local_id, path.route.origin_peer,
                                path.route.attrs, path.route.next_hop});
    }
  }
  // adj_out is hashed; (prefix, local id) is the canonical dump order.
  std::sort(out.begin(), out.end(),
            [](const AdjOutEntry& a, const AdjOutEntry& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              return a.local_id < b.local_id;
            });
  return out;
}

PeerDecisionInfo BgpSpeaker::peer_decision_info(PeerId peer) const {
  PeerDecisionInfo info;
  if (peer == kLocalRoutes) {
    info.ibgp = false;
    info.peer_asn = asn_;
    info.router_id = router_id_;
    return info;
  }
  auto it = sessions_.find(peer);
  if (it == sessions_.end()) return info;
  info.ibgp = it->second->config.peer_asn == asn_;
  info.peer_asn = it->second->config.peer_asn;
  info.peer_address = it->second->config.peer_address;
  info.router_id = it->second->peer_router_id;
  return info;
}

void BgpSpeaker::connect_peer(PeerId peer,
                              std::shared_ptr<sim::StreamEndpoint> stream) {
  Session& s = *sessions_.at(peer);
  s.stream = std::move(stream);
  s.decoder = MessageDecoder();
  s.open_received = false;
  s.stream->on_data([this, peer](const Bytes& data) {
    handle_bytes(peer, data);
  });
  s.stream->on_close([this, peer]() { session_down(peer, "stream closed"); });

  OpenMessage open;
  open.asn = asn_;
  open.hold_time = s.config.hold_time;
  open.router_id = router_id_;
  open.add_four_byte_asn(asn_);
  if (s.config.addpath != AddPathMode::kNone)
    open.add_addpath_ipv4(s.config.addpath);
  send_message(peer, open);
  s.state = SessionState::kOpenSent;
  obs_transitions_[static_cast<int>(s.state)]->inc();
  arm_hold_timer(peer);
}

void BgpSpeaker::disconnect_peer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.state == SessionState::kIdle) return;
  send_notification(peer, NotificationCode::kCease, 2, "admin shutdown");
  session_down(peer, "admin shutdown");
}

void BgpSpeaker::handle_bytes(PeerId peer, const Bytes& data) {
  Session& s = *sessions_.at(peer);
  s.decoder.feed(data);
  while (true) {
    auto result = s.decoder.poll();
    if (!result) {
      LOG_WARN("bgp", name_ << ": decode error from " << s.config.name << ": "
                            << result.error().message);
      send_notification(peer, NotificationCode::kMessageHeaderError,
                        static_cast<std::uint8_t>(result.error().code),
                        result.error().message);
      session_down(peer, "decode error");
      return;
    }
    if (!result->has_value()) break;
    handle_message(peer, std::move(**result));
    // The session may have gone down while handling the message (which
    // drains the pipeline before tearing state down).
    if (sessions_.at(peer)->state == SessionState::kIdle) return;
  }
  // Event-granularity barrier: everything this delivery staged is decided,
  // applied, and scheduled for export before the event returns.
  drain_pipeline();
}

void BgpSpeaker::handle_message(PeerId peer, BgpMessage message) {
  arm_hold_timer(peer);
  if (auto* update = std::get_if<UpdateMessage>(&message)) {
    handle_update(peer, *update);
    return;
  }
  // Non-UPDATE messages observe RIB state: flush staged route work first so
  // e.g. a NOTIFICATION-triggered teardown sees every preceding UPDATE
  // applied, exactly as in the serial message-at-a-time ordering.
  drain_pipeline();
  if (auto* open = std::get_if<OpenMessage>(&message)) {
    handle_open(peer, *open);
  } else if (auto* notification = std::get_if<NotificationMessage>(&message)) {
    handle_notification(peer, *notification);
  } else if (std::get_if<RouteRefreshMessage>(&message)) {
    // RFC 2918: the peer asks for our full Adj-RIB-Out again (typically
    // after changing its import policy). Force a complete resend: the
    // peer re-applies policy to routes that are unchanged on our side.
    Session& s = *sessions_.at(peer);
    if (s.state == SessionState::kEstablished) {
      for (auto& [prefix, po] : s.adj_out)
        for (auto& path : po.paths) path.route.attrs.reset();
      reevaluate_exports(peer);
    }
  } else {
    handle_keepalive(peer);
  }
}

void BgpSpeaker::request_refresh(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  send_message(peer, RouteRefreshMessage{});
}

void BgpSpeaker::reevaluate_exports(PeerId peer) {
  drain_pipeline();
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  // The peer's export identity may have changed out from under us (policy
  // edited in place, refresh received): recompute its fingerprint so it
  // migrates to the right group, then force a full-table reevaluation. The
  // encode stage diffs against the Adj-RIB-Out, so only real changes hit
  // the wire.
  refingerprint_peer(peer);
  schedule_flush(peer, /*immediate=*/true);
}

void BgpSpeaker::handle_open(PeerId peer, const OpenMessage& open) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kOpenSent) {
    send_notification(peer, NotificationCode::kFsmError, 0,
                      "OPEN in unexpected state");
    session_down(peer, "unexpected OPEN");
    return;
  }

  Asn remote_asn = open.four_byte_asn().value_or(open.asn);
  if (s.config.peer_asn != 0 && remote_asn != s.config.peer_asn) {
    send_notification(peer, NotificationCode::kOpenMessageError, 2,
                      "bad peer AS");
    session_down(peer, "bad peer AS");
    return;
  }
  if (s.config.peer_asn == 0) s.config.peer_asn = remote_asn;
  s.peer_router_id = open.router_id;
  s.negotiated_hold = std::min(s.config.hold_time, open.hold_time);

  // ADD-PATH negotiation (RFC 7911 §4): we send path ids iff we advertised
  // send and the peer advertised receive, and vice versa.
  AddPathMode local = s.config.addpath;
  AddPathMode remote = open.addpath_ipv4();
  auto has_send = [](AddPathMode m) {
    return m == AddPathMode::kSend || m == AddPathMode::kBoth;
  };
  auto has_recv = [](AddPathMode m) {
    return m == AddPathMode::kReceive || m == AddPathMode::kBoth;
  };
  s.addpath_tx = has_send(local) && has_recv(remote);
  s.addpath_rx = has_recv(local) && has_send(remote);

  // Both ends of this implementation always advertise 4-byte ASN support;
  // fall back to 2-byte encoding when the remote does not.
  bool four_byte = open.four_byte_asn().has_value();
  s.tx_options.attrs.four_byte_asn = four_byte;
  s.tx_options.add_path = s.addpath_tx;
  UpdateCodecOptions rx_options;
  rx_options.attrs.four_byte_asn = four_byte;
  rx_options.add_path = s.addpath_rx;
  s.decoder.set_options(rx_options);

  s.open_received = true;
  send_message(peer, KeepaliveMessage{});
  s.state = SessionState::kOpenConfirm;
  note_transition(peer, s.state);
}

void BgpSpeaker::handle_keepalive(PeerId peer) {
  Session& s = *sessions_.at(peer);
  ++s.stats.keepalives_received;
  if (s.state == SessionState::kOpenConfirm) {
    session_established(peer);
  }
}

void BgpSpeaker::session_established(PeerId peer) {
  Session& s = *sessions_.at(peer);
  s.state = SessionState::kEstablished;
  arm_keepalive_timer(peer);
  LOG_INFO("bgp", name_ << ": session with " << s.config.name
                        << " established (addpath tx=" << s.addpath_tx
                        << " rx=" << s.addpath_rx << ")");
  metrics_->trace().emit(loop_->now(), "bgp", "session_up",
                         {{"speaker", name_}, {"peer", s.config.name}});
  note_transition(peer, s.state);
  // Group membership is (re)computed per establishment: capabilities were
  // just negotiated and may differ from the previous incarnation.
  join_group(peer);
  send_initial_table(peer);
}

void BgpSpeaker::handle_notification(PeerId peer,
                                     const NotificationMessage& msg) {
  Session& s = *sessions_.at(peer);
  ++s.stats.notifications_received;
  LOG_WARN("bgp", name_ << ": NOTIFICATION from " << s.config.name << ": "
                        << msg.str());
  session_down(peer, "notification received: " + msg.str());
}

void BgpSpeaker::handle_update(PeerId peer, const UpdateMessage& update) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) {
    send_notification(peer, NotificationCode::kFsmError, 0,
                      "UPDATE before Established");
    session_down(peer, "early UPDATE");
    return;
  }
  ++s.stats.updates_received;
  ++total_updates_rx_;
  obs_updates_in_->inc();
  s.obs_updates_in->inc();
  obs::Span span(update_span_, nullptr);  // wall-clock CPU cost per UPDATE
  stage_update(peer, update);
}

void BgpSpeaker::inject_update(PeerId peer, const UpdateMessage& update) {
  Session& s = *sessions_.at(peer);
  if (s.state != SessionState::kEstablished) return;
  ++s.stats.updates_received;
  ++total_updates_rx_;
  obs_updates_in_->inc();
  s.obs_updates_in->inc();
  stage_update(peer, update);
}

void BgpSpeaker::stage_update(PeerId peer, const UpdateMessage& update) {
  for (const auto& entry : update.withdrawn) stage_route(peer, entry, nullptr);
  if (update.attributes) {
    // Intern once per UPDATE: every NLRI shares the AttrsPtr, repeated
    // announcements of the same set hit the pool, and downstream
    // pointer-keyed caches (vBGP's next-hop rewrite memo) get a stable key.
    AttrsPtr attrs = attr_pool_.intern(*update.attributes);
    for (const auto& entry : update.nlri) stage_route(peer, entry, attrs);
  }
}

void BgpSpeaker::stage_route(PeerId from, const NlriEntry& entry,
                             AttrsPtr attrs) {
  // Pre-policy route monitoring: stage 1 is serial and runs in arrival
  // order, so this mirror is canonical at any partition count.
  if (monitor_) monitor_->on_route_pre_policy(from, entry, attrs);
  stage_in_[pmap_.of(entry.prefix)].push_back(
      RouteWork{from, entry, std::move(attrs)});
  ++stage_pending_;
}

void BgpSpeaker::drain_pipeline() {
  if (stage_pending_ == 0 || in_pipeline_) return;
  in_pipeline_ = true;
  obs_stage_depth_->record(stage_pending_);
  const std::uint32_t n = pmap_.partitions();
  // Seeded visit order: deterministic per (seed, epoch), and deliberately
  // not ascending so nothing comes to depend on partition index order.
  auto order =
      exec::seeded_order(n, exec::mix64(pipeline_.seed ^ ++pipeline_epoch_));

  {
    obs::Span span(decision_span_, nullptr);  // wall-clock decision latency
    // Decision stage. Parallel only when a worker pool exists and any
    // installed import hook is declared thread-safe.
    const bool parallel = scheduler_ != nullptr &&
                          (!import_hook_ || import_hook_thread_safe_) && n > 1;
    if (parallel) {
      scheduler_->parallel_for(
          n, [this](std::size_t p) {
            process_partition(static_cast<std::uint32_t>(p));
          });
    } else {
      for (std::uint32_t p : order) process_partition(p);
    }
  }
  stage_pending_ = 0;

  // Serial effect application in the seeded partition order: per-peer
  // stats, route events, export fan-out. Totals are order-independent;
  // the fixed order keeps event sequences reproducible.
  for (std::uint32_t p : order) {
    PartitionOut& out = stage_out_[p];
    for (PeerId rejected : out.rejects)
      ++sessions_.at(rejected)->stats.routes_rejected_import;
    for (RouteEffect& effect : out.effects) {
      if (route_event_) route_event_(effect.route, effect.withdrawn);
      fan_out_export(effect.route.prefix, effect.route.peer);
      if (monitor_) monitor_batch_.push_back(&effect);
    }
    out.rejects.clear();
    // With a monitor attached the effects stay put until the tap pass
    // below has walked them; the batch holds bare pointers so attaching a
    // monitor costs pointer sorting, not RouteEffect (attrs refcount)
    // copies, in the hot path.
    if (!monitor_) out.effects.clear();
  }
  // Post-policy route monitoring: the seeded visit order above depends on
  // the partition count, so the tap sees the batch stable-sorted by prefix
  // instead — all effects for one prefix live in one partition FIFO, which
  // makes (prefix, then arrival) a canonical order at any partition count.
  if (monitor_) {
    if (!monitor_batch_.empty()) {
      std::stable_sort(monitor_batch_.begin(), monitor_batch_.end(),
                       [](const RouteEffect* a, const RouteEffect* b) {
                         return a->route.prefix < b->route.prefix;
                       });
      for (const RouteEffect* effect : monitor_batch_)
        monitor_->on_route_post_policy(effect->route, effect->withdrawn);
      monitor_batch_.clear();
    }
    for (std::uint32_t p : order) stage_out_[p].effects.clear();
  }
  obs_pipeline_runs_->inc();
  in_pipeline_ = false;
}

void BgpSpeaker::process_partition(std::uint32_t part) {
  auto& work = stage_in_[part];
  PartitionOut& out = stage_out_[part];
  for (RouteWork& w : work) {
    if (w.attrs) {
      decide_import(part, w, out);
    } else {
      decide_withdraw(w.from, w.entry, out);
    }
  }
  work.clear();
}

void BgpSpeaker::decide_import(std::uint32_t part, RouteWork& work,
                               PartitionOut& out) {
  (void)part;
  PeerId from = work.from;
  Session& s = *sessions_.at(from);
  const bool ibgp = s.config.peer_asn == asn_;

  // eBGP loop detection: drop routes carrying our own ASN.
  if (!ibgp && !s.config.allow_own_asn_in &&
      work.attrs->as_path.contains(asn_)) {
    out.rejects.push_back(from);
    return;
  }

  AttrBuilder builder(work.attrs);
  if (!s.config.import_policy.apply(work.entry.prefix, builder)) {
    out.rejects.push_back(from);
    // An implicit withdraw may be needed if a previous version was accepted.
    decide_withdraw(from, work.entry, out);
    return;
  }
  // Hand the hook an uninterned candidate and intern only its final answer:
  // when the hook rewrites the set (the vBGP next-hop case), the
  // intermediate policy result never pays for a pool insertion.
  AttrsPtr working;
  if (import_hook_) {
    auto hooked = import_hook_(from, work.entry, builder.release());
    if (!hooked) {
      out.rejects.push_back(from);
      decide_withdraw(from, work.entry, out);
      return;
    }
    working = attr_pool_.adopt(*hooked);
  } else {
    working = builder.commit(attr_pool_);
  }

  RibRoute route;
  route.prefix = work.entry.prefix;
  route.path_id = work.entry.path_id;
  route.peer = from;
  route.attrs = std::move(working);

  if (!s.adj_in.update(route)) return;  // no change
  loc_rib_.update(route);
  out.effects.push_back(RouteEffect{std::move(route), /*withdrawn=*/false});
}

void BgpSpeaker::decide_withdraw(PeerId from, const NlriEntry& entry,
                                 PartitionOut& out) {
  Session& s = *sessions_.at(from);
  auto removed = s.adj_in.withdraw(entry.prefix, entry.path_id);
  if (!removed) return;
  loc_rib_.withdraw(entry.prefix, from, entry.path_id);
  out.effects.push_back(RouteEffect{std::move(*removed), /*withdrawn=*/true});
}

void BgpSpeaker::originate(const Ipv4Prefix& prefix, PathAttributes attrs) {
  drain_pipeline();
  RibRoute route;
  route.prefix = prefix;
  route.path_id = 0;
  route.peer = kLocalRoutes;
  route.attrs = attr_pool_.intern(std::move(attrs));
  originated_[prefix] = route.attrs;
  loc_rib_.update(route);
  if (route_event_) route_event_(route, /*withdrawn=*/false);
  fan_out_export(prefix, kLocalRoutes);
  if (monitor_) monitor_->on_route_post_policy(route, /*withdrawn=*/false);
}

void BgpSpeaker::withdraw_originated(const Ipv4Prefix& prefix) {
  drain_pipeline();
  auto it = originated_.find(prefix);
  if (it == originated_.end()) return;
  RibRoute route;
  route.prefix = prefix;
  route.path_id = 0;
  route.peer = kLocalRoutes;
  route.attrs = it->second;
  originated_.erase(it);
  loc_rib_.withdraw(prefix, kLocalRoutes, 0);
  if (route_event_) route_event_(route, /*withdrawn=*/true);
  fan_out_export(prefix, kLocalRoutes);
  if (monitor_) monitor_->on_route_post_policy(route, /*withdrawn=*/true);
}

bool BgpSpeaker::export_eligible(PeerId to, const RibRoute& route) const {
  const Session& s = *sessions_.at(to);
  const bool to_ibgp = s.config.peer_asn == asn_;
  const bool from_ibgp =
      route.peer != kLocalRoutes && sessions_.count(route.peer) &&
      sessions_.at(route.peer)->config.peer_asn == asn_;

  // Standard iBGP rule (no route reflection): iBGP-learned routes are not
  // re-advertised to iBGP peers.
  if (to_ibgp && from_ibgp) return false;

  // RFC 1997 well-known communities.
  if (route.attrs->has_community(kNoAdvertise)) return false;
  if (!to_ibgp && route.attrs->has_community(kNoExport)) return false;
  return true;
}

bool BgpSpeaker::standard_export_transform(PeerId to, const RibRoute& route,
                                           AttrBuilder& attrs,
                                           bool use_placeholder,
                                           bool* splice) const {
  if (!export_eligible(to, route)) return false;
  const Session& s = *sessions_.at(to);
  const bool to_ibgp = s.config.peer_asn == asn_;
  const bool from_ibgp =
      route.peer != kLocalRoutes && sessions_.count(route.peer) &&
      sessions_.at(route.peer)->config.peer_asn == asn_;
  const PathAttributes& view = attrs.view();

  if (to_ibgp) {
    if (!view.local_pref) attrs.mutate().local_pref = 100;
  } else if (s.config.transparent) {
    // Route-server transparency (RFC 7947 §2.2): no local-AS prepend, the
    // next-hop of the advertising client is preserved — often the whole
    // transform is a no-op and the route keeps its interned pointer.
    if (view.local_pref) attrs.mutate().local_pref.reset();
  } else {
    PathAttributes& m = attrs.mutate();
    m.as_path = m.as_path.prepended(asn_);
    m.local_pref.reset();
    // MED is non-transitive across ASes: drop it when re-advertising a
    // route learned via eBGP, keep it for routes this AS originates.
    if (route.peer != kLocalRoutes && !from_ibgp) m.med.reset();
    if (use_placeholder) {
      // Group template: one attribute set serves every member; each splices
      // its own local address over the placeholder at send time.
      m.next_hop = kNhPlaceholder;
      if (splice) *splice = true;
    } else {
      m.next_hop = s.config.local_address;
    }
  }
  return true;
}

std::uint64_t BgpSpeaker::export_fingerprint(PeerId peer) const {
  const Session& s = *sessions_.at(peer);
  std::uint64_t h = 0x5ee71a6e0bull;
  auto mix = [&](std::uint64_t v) { h = exec::mix64(h ^ v); };
  // Grouping off: every session fingerprints to itself (singleton groups
  // running the identical machinery — the differential's escape hatch).
  if (!pipeline_.group_exports) mix(peer);
  // Export-hook class. An installed hook with no registered class is
  // opaque: its results may depend on the member, so the peer never shares.
  // A source-driven class keys the group even without a general hook.
  if (s.export_class != 0 && source_export_hooks_.count(s.export_class)) {
    mix(s.export_class);
  } else if (export_hook_) {
    mix(s.export_class != 0 ? s.export_class
                            : (0x8000000000000000ull | peer));
  } else {
    mix(0);
  }
  mix(s.config.peer_asn == asn_ ? 1 : 0);          // iBGP vs eBGP transform
  mix(s.config.transparent ? 1 : 0);               // RFC 7947 transparency
  mix(s.config.export_all_paths ? 1 : 0);
  mix(s.addpath_tx ? 1 : 0);                       // negotiated ADD-PATH tx
  mix(s.tx_options.attrs.four_byte_asn ? 1 : 0);   // negotiated codec slot
  mix(static_cast<std::uint64_t>(s.config.mrai.ns()));  // MRAI class
  mix(s.config.export_policy.fingerprint());
  return h;
}

bool BgpSpeaker::fingerprint_matches(PeerId peer,
                                     const ExportGroup& group) const {
  if (group.members.empty()) return true;
  PeerId rep = group.members.front();
  if (rep == peer) return true;
  const Session& a = *sessions_.at(peer);
  const Session& b = *sessions_.at(rep);
  return (a.config.peer_asn == asn_) == (b.config.peer_asn == asn_) &&
         a.config.transparent == b.config.transparent &&
         a.config.export_all_paths == b.config.export_all_paths &&
         a.addpath_tx == b.addpath_tx &&
         a.tx_options.attrs.four_byte_asn ==
             b.tx_options.attrs.four_byte_asn &&
         a.config.mrai == b.config.mrai &&
         a.export_class == b.export_class &&
         a.config.export_policy == b.config.export_policy;
}

void BgpSpeaker::join_group(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.group != 0) return;
  std::uint64_t key = export_fingerprint(peer);
  ExportGroup* group = nullptr;
  // The fingerprint is a hash: verify content against the candidate group's
  // representative and perturb the key on a genuine collision.
  while (true) {
    auto it = group_by_key_.find(key);
    if (it == group_by_key_.end()) break;
    ExportGroup& candidate = *groups_.at(it->second);
    if (fingerprint_matches(peer, candidate)) {
      group = &candidate;
      break;
    }
    key = exec::mix64(key + 1);
  }
  if (group == nullptr) {
    auto owned = std::make_unique<ExportGroup>();
    group = owned.get();
    group->id = next_group_id_++;
    group->key = key;
    groups_.emplace(group->id, std::move(owned));
    group_by_key_.emplace(key, group->id);
  }
  group->members.insert(
      std::lower_bound(group->members.begin(), group->members.end(), peer),
      peer);
  // The memo caches group-level evaluation results keyed only on (source
  // attrs, origin): valid when nothing else feeds the evaluation — a
  // prefix-independent policy and either no hook or one that declared
  // itself memo-safe (and invalidates on external-state changes). Grouping
  // itself (hook/policy once per group) does not require the memo.
  auto shit = s.export_class != 0 ? source_export_hooks_.find(s.export_class)
                                  : source_export_hooks_.end();
  group->source_driven = shit != source_export_hooks_.end();
  group->source_hook = group->source_driven ? shit->second : nullptr;
  // A source-driven hook is memo-safe by contract (and bypasses the
  // policy, so prefix independence is moot for it).
  group->memo_enabled =
      group->source_driven ||
      ((!export_hook_ || export_hook_memo_safe_) &&
       s.config.export_policy.prefix_independent());
  group->spliceable = !export_hook_ || s.export_class != 0;
  s.group = group->id;
  s.group_cursor = group->log_end();
  s.needs_full = true;
  obs_group_members_->record(group->members.size());
}

void BgpSpeaker::leave_group(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.group == 0) return;
  auto it = groups_.find(s.group);
  s.group = 0;
  s.group_cursor = 0;
  s.needs_full = false;
  if (it == groups_.end()) return;
  ExportGroup& group = *it->second;
  auto m = std::find(group.members.begin(), group.members.end(), peer);
  if (m != group.members.end()) group.members.erase(m);
  if (group.members.empty()) {
    group_by_key_.erase(group.key);
    groups_.erase(it);
  } else {
    trim_group_log(group);
  }
}

void BgpSpeaker::refingerprint_peer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  std::uint64_t old_group = s.group;
  if (old_group != 0) {
    // The peer's policy may have been edited in place before this call;
    // results memoized under the old content are no longer trustworthy.
    auto it = groups_.find(old_group);
    if (it != groups_.end()) it->second->memo.clear();
  }
  leave_group(peer);
  if (s.state != SessionState::kEstablished) return;
  join_group(peer);
  auto it = groups_.find(s.group);
  if (it != groups_.end()) it->second->memo.clear();
}

void BgpSpeaker::refingerprint_established() {
  for (auto& [id, session] : sessions_) {
    if (session->state == SessionState::kEstablished) refingerprint_peer(id);
  }
}

void BgpSpeaker::clear_group_memos() {
  for (auto& [id, group] : groups_) group->memo.clear();
}

void BgpSpeaker::trim_group_log(ExportGroup& group) {
  std::uint64_t min_cursor = group.log_end();
  for (PeerId member : group.members) {
    const Session& s = *sessions_.at(member);
    if (s.needs_full) continue;  // resyncs from the table, not the log
    min_cursor = std::min(min_cursor, s.group_cursor);
  }
  while (group.log_base < min_cursor && !group.log.empty()) {
    group.log.pop_front();
    ++group.log_base;
  }
}

void BgpSpeaker::set_export_hook(ExportHook hook, bool thread_safe,
                                 bool memo_safe) {
  export_hook_ = std::move(hook);
  export_hook_thread_safe_ = thread_safe;
  export_hook_memo_safe_ = memo_safe;
  // Hook presence changes fingerprints (opaque peers become singletons)
  // and memo eligibility; memoized results may embed old hook output.
  clear_group_memos();
  refingerprint_established();
}

void BgpSpeaker::set_source_export_hook(std::uint64_t export_class,
                                        SourceExportHook hook) {
  if (export_class == 0) return;  // class 0 = opaque, never source-driven
  if (hook) {
    source_export_hooks_[export_class] = std::move(hook);
  } else {
    source_export_hooks_.erase(export_class);
  }
  // Registration flips the class's evaluation mode: stale memos and stale
  // group flags both need rebuilding.
  clear_group_memos();
  refingerprint_established();
}

void BgpSpeaker::invalidate_export_memos() { clear_group_memos(); }

void BgpSpeaker::set_export_filter(ExportFilterHook hook, bool thread_safe) {
  export_filter_ = std::move(hook);
  export_filter_thread_safe_ = thread_safe;
}

void BgpSpeaker::set_peer_export_class(PeerId peer,
                                       std::uint64_t export_class) {
  Session& s = *sessions_.at(peer);
  if (s.export_class == export_class) return;
  s.export_class = export_class;
  if (s.state == SessionState::kEstablished) {
    clear_group_memos();
    refingerprint_peer(peer);
  }
}

void BgpSpeaker::set_peer_mrai(PeerId peer, Duration mrai) {
  Session& s = *sessions_.at(peer);
  if (s.config.mrai == mrai) return;
  s.config.mrai = mrai;
  if (s.state == SessionState::kEstablished) {
    clear_group_memos();
    refingerprint_peer(peer);
  }
}

std::uint64_t BgpSpeaker::export_group_of(PeerId peer) const {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? 0 : it->second->group;
}

void BgpSpeaker::fan_out_export(const Ipv4Prefix& prefix, PeerId origin) {
  for (auto& [id, group] : groups_) {
    // A singleton group whose sole member originated the change would log
    // an entry nobody ever consumes (split horizon skips it at drain, and
    // a later joiner resyncs from the table, not the log): the source
    // session of a busy feed would otherwise grow a dead log forever.
    if (group->members.size() == 1 && group->members.front() == origin)
      continue;
    group->log.push_back(GroupLogEntry{prefix, origin});
    if (group->log.size() > pipeline_.peer_queue_capacity) {
      // Bounded log: members whose cursor falls off the front detect it at
      // drain time and fall back to a full-table reevaluation.
      group->log.pop_front();
      ++group->log_base;
    }
    for (PeerId member : group->members) {
      if (member == origin) continue;
      schedule_flush(member);
    }
  }
}

bool BgpSpeaker::member_has_pending(PeerId peer) const {
  const Session& s = *sessions_.at(peer);
  if (s.group == 0) return false;
  auto it = groups_.find(s.group);
  if (it == groups_.end()) return false;
  const ExportGroup& group = *it->second;
  if (s.needs_full || s.group_cursor < group.log_base) {
    // A full resync with nothing to sync (empty table, nothing advertised)
    // is not pending work — scheduling it would only rearm MRAI.
    return loc_rib_.prefix_count() > 0 || !s.adj_out.empty();
  }
  for (std::uint64_t seq = s.group_cursor; seq < group.log_end(); ++seq) {
    if (group.log[seq - group.log_base].origin != peer) return true;
  }
  return false;
}

void BgpSpeaker::evaluate_group(ExportGroup& group, const Ipv4Prefix& prefix,
                                std::vector<GroupAdvert>& out) {
  PeerId rep = group.members.front();
  const Session& s = *sessions_.at(rep);
  obs_group_evals_->inc();
  // ADD-PATH groups export every candidate: borrow the Loc-RIB's own
  // vector instead of copying it (nothing below mutates the RIB — hooks
  // and policies only transform attribute sets).
  const std::vector<RibRoute>* sources = nullptr;
  std::vector<RibRoute> best_only;
  if (s.config.export_all_paths && s.addpath_tx) {
    sources = loc_rib_.candidates_ref(prefix);
  } else {
    auto best = loc_rib_.best(prefix);
    if (best) best_only.push_back(*best);
    sources = &best_only;
  }
  if (!sources) return;
  for (const RibRoute& route : *sources) {
    // No split horizon here: the source route rides along in the advert and
    // each member skips its own at encode time.
    if (group.memo_enabled) {
      auto mit = group.memo.find(
          ExportGroup::MemoKey{route.attrs.get(), route.peer});
      if (mit != group.memo.end()) {
        obs_group_memo_hits_->inc();
        if (mit->second.result) {
          out.push_back(GroupAdvert{route.peer, route.path_id, route.attrs,
                                    mit->second.result, mit->second.splice,
                                    mit->second.splice_nh});
        }
        continue;
      }
    }
    bool splice = false;
    std::optional<Ipv4Address> splice_nh;
    AttrsPtr result;
    if (group.source_driven) {
      // Source-driven class: the source set is the template — no clone, no
      // re-intern — and the hook only picks the next-hop, spliced over the
      // cached wire bytes at send time.
      if (export_eligible(rep, route)) {
        if (auto nh = group.source_hook(route)) {
          result = route.attrs;
          if (*nh != route.attrs->next_hop) {
            splice = true;
            splice_nh = *nh;
          }
        }
      }
    } else {
      AttrBuilder builder(route.attrs);
      if (standard_export_transform(rep, route, builder,
                                    /*use_placeholder=*/group.spliceable,
                                    &splice) &&
          s.config.export_policy.apply(prefix, builder)) {
        // As on import: intern only the post-hook set, so a hook that
        // replaces the candidate (vBGP's experiment fan-out) never inserts
        // the discarded intermediate into the pool.
        if (export_hook_) {
          auto hooked = export_hook_(rep, route, builder.release());
          if (hooked) result = attr_pool_.adopt(*hooked);
        } else {
          result = builder.commit(attr_pool_);
        }
      }
      // A policy action or hook that pinned a concrete next-hop overrides
      // the placeholder: the template's next-hop is final, nothing to
      // splice.
      if (result && splice && result->next_hop != kNhPlaceholder)
        splice = false;
    }
    if (group.memo_enabled && group.memo.size() < 65536) {
      group.memo.emplace(
          ExportGroup::MemoKey{route.attrs.get(), route.peer},
          ExportGroup::MemoValue{route.attrs, result, splice, splice_nh});
    }
    if (result) {
      out.push_back(GroupAdvert{route.peer, route.path_id, route.attrs,
                                std::move(result), splice, splice_nh});
    }
  }
}

void BgpSpeaker::schedule_flush(PeerId to, bool immediate) {
  Session& s = *sessions_.at(to);
  if (s.state != SessionState::kEstablished) return;
  if (s.flush_scheduled) return;
  if (!member_has_pending(to)) return;
  s.flush_scheduled = true;

  SimTime now = loop_->now();
  SimTime at = now;
  if (!immediate && s.next_flush_allowed > now) at = s.next_flush_allowed;
  s.flush_at = at;
  auto [it, inserted] = flush_batches_.try_emplace(at);
  it->second.push_back(to);
  // One drain event per distinct flush instant: every peer due then shares
  // the event — and the encode stage's parallel fan-out.
  if (inserted)
    loop_->schedule_at(at, [this, at]() { drain_flush_batch(at); });
}

void BgpSpeaker::drain_flush_batch(SimTime at) {
  auto node = flush_batches_.extract(at);
  if (node.empty()) return;
  std::vector<PeerId> peers = std::move(node.mapped());
  // Ascending peer order — the order the per-peer flush events fired in
  // before batching, and independent of how the batch was filled.
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());

  // Serial plan: decide which members are due and which prefixes each must
  // diff, consuming cursors and needs_full flags now so the parallel
  // phases below only read group state.
  std::vector<PeerId> due;
  std::vector<std::vector<Ipv4Prefix>> member_prefixes;
  std::map<std::uint64_t, std::vector<Ipv4Prefix>> group_prefixes;
  // Full-resync lists are identical for every fresh member of one group
  // (the whole Loc-RIB, sorted): compute once per group per batch. A mass
  // join — hundreds of sessions syncing the initial table in one batch —
  // would otherwise walk and sort the full table once per member.
  std::map<std::uint64_t, std::vector<Ipv4Prefix>> full_resync_cache;
  due.reserve(peers.size());
  for (PeerId peer : peers) {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) continue;
    Session& s = *it->second;
    // flush_at distinguishes this batch from a newer one scheduled after a
    // session bounce; stale memberships are simply skipped.
    if (!s.flush_scheduled || s.flush_at != at) continue;
    s.flush_scheduled = false;
    if (s.state != SessionState::kEstablished || s.group == 0) continue;
    ExportGroup& group = *groups_.at(s.group);

    std::vector<Ipv4Prefix> prefixes;
    if (s.needs_full || s.group_cursor < group.log_base) {
      // Why this member resyncs: a deliberate full sync (initial table,
      // refresh, group rejoin) vs. a cursor lost to delta-log trimming —
      // the latter signals an undersized peer_queue_capacity.
      (s.needs_full ? obs_resync_initial_ : obs_resync_log_trim_)->inc();
      // Full resync: every Loc-RIB prefix plus everything currently
      // advertised, so stale adverts are withdrawn too. Members with an
      // empty Adj-RIB-Out (fresh sessions) all need exactly the sorted
      // Loc-RIB, so that list is shared via full_resync_cache.
      auto cached = full_resync_cache.find(s.group);
      if (s.adj_out.empty() && cached != full_resync_cache.end()) {
        prefixes = cached->second;
      } else {
        loc_rib_.visit_all(
            [&](const RibRoute& route) { prefixes.push_back(route.prefix); });
        for (const auto& [prefix, out] : s.adj_out) prefixes.push_back(prefix);
        std::sort(prefixes.begin(), prefixes.end());
        prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                       prefixes.end());
        if (s.adj_out.empty()) full_resync_cache.emplace(s.group, prefixes);
      }
    } else {
      for (std::uint64_t seq = s.group_cursor; seq < group.log_end(); ++seq) {
        const GroupLogEntry& entry = group.log[seq - group.log_base];
        if (entry.origin != peer) prefixes.push_back(entry.prefix);
      }
      std::sort(prefixes.begin(), prefixes.end());
      prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                     prefixes.end());
    }
    s.needs_full = false;
    s.group_cursor = group.log_end();

    // Union of the group's member lists. The overwhelmingly common case is
    // every member consuming the same log window (or the same full
    // resync), yielding identical sorted lists — detected by equality so a
    // thousand-member group costs one comparison per member, not a
    // re-sort of a growing concatenation.
    auto& merged = group_prefixes[s.group];
    if (merged.empty()) {
      merged = prefixes;
    } else if (merged != prefixes) {
      merged.insert(merged.end(), prefixes.begin(), prefixes.end());
    }
    due.push_back(peer);
    member_prefixes.push_back(std::move(prefixes));
  }
  for (auto& [gid, prefixes] : group_prefixes) {
    std::sort(prefixes.begin(), prefixes.end());
    prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                   prefixes.end());
    // Pre-trim depth: how far behind the slowest member let the log grow.
    obs_group_log_depth_->record(groups_.at(gid)->log.size());
    trim_group_log(*groups_.at(gid));
  }
  if (due.empty()) return;
  obs_flush_batch_->record(due.size());

  // Phase A — group evaluation: transform + policy + export hook run once
  // per (group, prefix), producing the shared advert templates. Groups
  // touch disjoint state (their own memo) and the attr pool is
  // concurrent-safe, so groups fan out across the worker pool (unless a
  // non-thread-safe export hook is installed). Ascending group id is the
  // deterministic serial order.
  std::vector<std::uint64_t> gids;
  std::vector<GroupEval> gevals(group_prefixes.size());
  std::unordered_map<std::uint64_t, std::size_t> gindex;
  gids.reserve(group_prefixes.size());
  for (const auto& [gid, prefixes] : group_prefixes) {
    gindex.emplace(gid, gids.size());
    gids.push_back(gid);
  }
  auto eval_one = [&](std::size_t i) {
    ExportGroup& group = *groups_.at(gids[i]);
    GroupEval& eval = gevals[i];
    const std::vector<Ipv4Prefix>& order = group_prefixes.at(gids[i]);
    eval.spans.reserve(order.size());
    for (const Ipv4Prefix& prefix : order) {
      auto before = static_cast<std::uint32_t>(eval.adverts.size());
      evaluate_group(group, prefix, eval.adverts);
      eval.spans.emplace_back(
          before, static_cast<std::uint32_t>(eval.adverts.size()) - before);
    }
  };
  const bool eval_parallel = scheduler_ != nullptr && gids.size() > 1 &&
                             (!export_hook_ || export_hook_thread_safe_);
  if (eval_parallel) {
    scheduler_->parallel_for(gids.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < gids.size(); ++i) eval_one(i);
  }

  // Serial pre-encode: resolve each advert's wire template once per group
  // through the encode cache, ascending group id — the deterministic order
  // the pool's hit/miss counters accrue in. Phase B then splices from the
  // resolved cache storage (stable: entries are node-based and never swept
  // mid-drain) without touching the pool, so per-member cache crediting is
  // deterministic under the parallel encode fan-out: a member's send is a
  // cache hit by construction once its template is warm. Adverts always
  // carry pool-interned sets (adopt/commit guarantee it), so encoded()
  // never falls back to its scratch buffer here.
  if (attr_pool_.encode_cache_enabled()) {
    for (std::size_t i = 0; i < gids.size(); ++i) {
      ExportGroup& group = *groups_.at(gids[i]);
      const Session& rep = *sessions_.at(group.members.front());
      for (GroupAdvert& advert : gevals[i].adverts) {
        advert.wire = &attr_pool_.encoded(advert.attrs, rep.tx_options.attrs,
                                          nullptr, &advert.nh_offset);
      }
    }
  }

  // Phase B — member encode: per-member Adj-RIB-Out diff against the group
  // evaluation, wire assembly from the pre-encoded templates, next-hop
  // splice. Sessions are disjoint, so members fan out across the worker
  // pool — unless a non-thread-safe export filter is installed, or the
  // encode cache is off (members then serialize through the pool's shared
  // scratch buffer). Serial order is ascending peer id — `due` is sorted.
  std::vector<EncodeResult> results(due.size());
  auto encode_one = [&](std::size_t i) {
    const Session& s = *sessions_.at(due[i]);
    results[i] =
        encode_member(due[i], member_prefixes[i], group_prefixes.at(s.group),
                      gevals[gindex.at(s.group)]);
  };
  const bool encode_parallel =
      scheduler_ != nullptr && due.size() > 1 &&
      attr_pool_.encode_cache_enabled() &&
      (!export_filter_ || export_filter_thread_safe_);
  {
    obs::Span span(encode_span_, nullptr);  // wall-clock encode latency
    if (encode_parallel) {
      scheduler_->parallel_for(due.size(), encode_one);
    } else {
      for (std::size_t i = 0; i < due.size(); ++i) encode_one(i);
    }
  }

  // Phase C — serial transmit + stats, ascending peer order: one coalesced
  // stream send per peer (the decoder reassembles message-by-message).
  for (std::size_t i = 0; i < due.size(); ++i) {
    Session& s = *sessions_.at(due[i]);
    EncodeResult& r = results[i];
    if (s.config.mrai > Duration::nanos(0))
      s.next_flush_allowed = loop_->now() + s.config.mrai;
    if (!r.wire.empty() && s.stream && s.stream->open())
      s.stream->send(std::move(r.wire));
    s.stats.updates_sent += r.updates;
    total_updates_tx_ += r.updates;
    s.stats.attr_encode_cache_hits += r.cache_hits;
    s.stats.attr_encode_cache_misses += r.cache_misses;
    if (r.updates > 0) {
      obs_updates_out_->add(r.updates);
      s.obs_updates_out->add(r.updates);
    }
  }
}

BgpSpeaker::EncodeResult BgpSpeaker::encode_member(
    PeerId to, const std::vector<Ipv4Prefix>& prefixes,
    const std::vector<Ipv4Prefix>& group_order, const GroupEval& eval) {
  Session& s = *sessions_.at(to);
  EncodeResult r;
  const bool stream_open = s.stream && s.stream->open();
  std::vector<NlriEntry> withdrawals;
  // A full-table sync lands here with one prefix per Loc-RIB entry;
  // reserving up front avoids incremental rehashes of a large Adj-RIB-Out.
  if (s.adj_out.size() + prefixes.size() > s.adj_out.bucket_count())
    s.adj_out.reserve(s.adj_out.size() + prefixes.size());

  std::vector<std::pair<std::uint32_t, const GroupAdvert*>> desired;
  std::vector<NlriEntry> nlri;
  // Merge-walk: the member's prefix list is a sorted subset of the group's
  // sorted prefix list, so each prefix's advert span is found by advancing
  // a single index — no per-prefix hashing.
  std::size_t gi = 0;
  for (const Ipv4Prefix& prefix : prefixes) {
    const GroupAdvert* abegin = nullptr;
    const GroupAdvert* aend = nullptr;
    while (gi < group_order.size() && group_order[gi] < prefix) ++gi;
    if (gi < group_order.size() && group_order[gi] == prefix) {
      auto [off, count] = eval.spans[gi];
      abegin = eval.adverts.data() + off;
      aend = abegin + count;
    }

    auto poit = s.adj_out.find(prefix);
    if (abegin == aend && poit == s.adj_out.end()) continue;

    // Member-level selection over the group templates: split horizon,
    // export filter, local path-id allocation.
    desired.clear();
    for (const GroupAdvert* ap = abegin; ap != aend; ++ap) {
      const GroupAdvert& advert = *ap;
      if (advert.origin == to) continue;  // split horizon
      if (export_filter_ &&
          !export_filter_(to, advert.origin, *advert.source_attrs))
        continue;
      std::uint32_t local_id = 0;
      if (s.addpath_tx) {
        if (poit == s.adj_out.end())
          poit = s.adj_out.emplace(prefix, Session::PrefixOut{}).first;
        auto& paths = poit->second.paths;
        auto idit =
            std::find_if(paths.begin(), paths.end(), [&](const auto& p) {
              return p.origin == advert.origin &&
                     p.origin_path_id == advert.origin_path_id;
            });
        if (idit == paths.end()) {
          paths.push_back({advert.origin, advert.origin_path_id,
                           s.next_out_id++, false, OutRoute{}});
          idit = std::prev(paths.end());
        }
        local_id = idit->local_id;
      }
      desired.emplace_back(local_id, &advert);
    }
    if (!s.addpath_tx && desired.size() > 1) desired.resize(1);
    if (poit == s.adj_out.end()) {
      if (desired.empty()) continue;
      poit = s.adj_out.emplace(prefix, Session::PrefixOut{}).first;
    }

    auto& paths = poit->second.paths;

    // Withdraw adverts that are no longer desired. `paths` is sorted by
    // ascending local id (ids are allocated monotonically), matching the
    // withdrawal emission order of the old ordered-map representation.
    // Withdrawn entries stay (inactive) so a re-advertisement of the same
    // origin path reuses its local id while the prefix remains advertised.
    for (auto& p : paths) {
      if (!p.active) continue;
      bool still = false;
      for (const auto& [id, advert] : desired) {
        if (id == p.local_id) {
          still = true;
          break;
        }
      }
      if (!still) {
        withdrawals.push_back({p.local_id, prefix});
        p.active = false;
        p.route = OutRoute{};
      }
    }

    // Advertise new/changed paths (one UPDATE per path; production
    // implementations batch by shared attributes). Unchanged adverts are
    // detected by pointer identity on the shared template — interned sets
    // compare in O(1) — plus the spliced next-hop.
    for (const auto& [id, advert] : desired) {
      const Ipv4Address final_nh =
          advert->splice ? (advert->splice_nh ? *advert->splice_nh
                                              : s.config.local_address)
                         : advert->attrs->next_hop;
      auto it = std::lower_bound(
          paths.begin(), paths.end(), id,
          [](const auto& p, std::uint32_t v) { return p.local_id < v; });
      if (it == paths.end() || it->local_id != id)
        it = paths.insert(
            it, {advert->origin, advert->origin_path_id, id, false, OutRoute{}});
      if (it->active && it->route.attrs == advert->attrs &&
          it->route.next_hop == final_nh)
        continue;
      it->active = true;
      it->origin = advert->origin;
      it->origin_path_id = advert->origin_path_id;
      it->route = OutRoute{advert->origin, advert->origin_path_id,
                           advert->attrs, final_nh};
      if (stream_open) {
        nlri.assign(1, {id, prefix});
        if (advert->wire != nullptr) {
          // Pre-encoded by the serial warm-up pass: this member's send is
          // a cache hit by construction.
          ++r.cache_hits;
          encode_update_spliced_into(
              r.wire, *advert->wire,
              advert->splice ? advert->nh_offset : kNoNextHopOffset,
              final_nh, nlri, s.tx_options);
        } else {
          bool hit = false;
          std::size_t nh_offset = kNoNextHopOffset;
          const Bytes& attr_bytes = attr_pool_.encoded(
              advert->attrs, s.tx_options.attrs, &hit, &nh_offset);
          if (hit)
            ++r.cache_hits;
          else
            ++r.cache_misses;
          encode_update_spliced_into(
              r.wire, attr_bytes,
              advert->splice ? nh_offset : kNoNextHopOffset, final_nh, nlri,
              s.tx_options);
        }
        if (advert->splice) obs_group_splices_->inc();
      }
      ++r.updates;
    }
    // No desired paths means everything was withdrawn: drop the entry (and
    // with it the id mapping — matching the previous representation, which
    // erased once no route remained).
    if (desired.empty()) s.adj_out.erase(poit);
  }

  if (!withdrawals.empty()) {
    UpdateMessage update;
    update.withdrawn = std::move(withdrawals);
    if (stream_open) {
      Bytes msg = encode_message(update, s.tx_options);
      r.wire.insert(r.wire.end(), msg.begin(), msg.end());
    }
    ++r.updates;
  }
  return r;
}

void BgpSpeaker::send_initial_table(PeerId to) {
  Session& s = *sessions_.at(to);
  s.needs_full = true;
  schedule_flush(to, /*immediate=*/true);
}

void BgpSpeaker::send_message(PeerId peer, const BgpMessage& message) {
  Session& s = *sessions_.at(peer);
  if (!s.stream || !s.stream->open()) return;
  s.stream->send(encode_message(message, s.tx_options));
}

void BgpSpeaker::send_notification(PeerId peer, NotificationCode code,
                                   std::uint8_t subcode,
                                   const std::string& reason) {
  Session& s = *sessions_.at(peer);
  NotificationMessage msg;
  msg.code = code;
  msg.subcode = subcode;
  msg.data.assign(reason.begin(), reason.end());
  send_message(peer, msg);
  ++s.stats.notifications_sent;
}

void BgpSpeaker::arm_hold_timer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  if (s.negotiated_hold == 0) {  // hold timer disabled
    ++s.hold_gen;
    s.hold_scheduled = false;
    return;
  }
  s.hold_deadline = loop_->now() + Duration::seconds(s.negotiated_hold);
  // A pending check that fires at or after the deadline honors the refresh
  // by chasing. A check queued for *later* than the new deadline cannot —
  // that happens when OPEN negotiation shrinks the hold time below the
  // pre-negotiation default — so supersede it with an earlier one.
  if (s.hold_scheduled && s.hold_check_at <= s.hold_deadline) return;
  s.hold_scheduled = true;
  schedule_hold_check(peer, ++s.hold_gen);
}

void BgpSpeaker::schedule_hold_check(PeerId peer, std::uint64_t gen) {
  Session& s = *sessions_.at(peer);
  s.hold_check_at = s.hold_deadline;
  loop_->schedule_at(s.hold_deadline, [this, peer, gen]() {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    if (session.hold_gen != gen || session.state == SessionState::kIdle)
      return;
    if (loop_->now() < session.hold_deadline) {
      // Traffic arrived since this check was queued: chase the new deadline.
      schedule_hold_check(peer, gen);
      return;
    }
    session.hold_scheduled = false;
    send_notification(peer, NotificationCode::kHoldTimerExpired, 0,
                      "hold timer expired");
    session_down(peer, "hold timer expired");
  });
}

void BgpSpeaker::arm_keepalive_timer(PeerId peer) {
  Session& s = *sessions_.at(peer);
  std::uint64_t gen = ++s.keepalive_gen;
  Duration interval = Duration::seconds(std::max<int>(1, s.negotiated_hold / 3));
  loop_->schedule_after(interval, [this, peer, gen]() {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    if (session.keepalive_gen != gen ||
        session.state != SessionState::kEstablished)
      return;
    send_message(peer, KeepaliveMessage{});
    arm_keepalive_timer(peer);
  });
}

void BgpSpeaker::session_down(PeerId peer, const std::string& reason) {
  // Apply anything the dying session's last messages staged before tearing
  // its state down — otherwise the clear below would race stale work.
  drain_pipeline();
  Session& s = *sessions_.at(peer);
  if (s.state == SessionState::kIdle) return;
  LOG_INFO("bgp", name_ << ": session with " << s.config.name << " down: "
                        << reason);
  s.state = SessionState::kIdle;
  ++s.hold_gen;
  ++s.keepalive_gen;
  s.hold_scheduled = false;
  if (s.stream) {
    s.stream->close();
    s.stream.reset();
  }
  s.adj_out.clear();
  s.flush_scheduled = false;
  leave_group(peer);

  // Withdraw everything learned from this peer.
  auto removed = s.adj_in.clear();
  std::set<Ipv4Prefix> affected;
  for (const RibRoute& route : removed) {
    loc_rib_.withdraw(route.prefix, peer, route.path_id);
    affected.insert(route.prefix);
    if (route_event_) route_event_(route, /*withdrawn=*/true);
    // adj_in.clear() returns routes merged back into global prefix order,
    // so this direct emission is canonical at any partition count.
    if (monitor_) monitor_->on_route_post_policy(route, /*withdrawn=*/true);
  }
  for (const auto& prefix : affected) fan_out_export(prefix, peer);
  // The churned-out table may have been the last reference to many pooled
  // attribute sets (and their cached encodings); release them now so a
  // flapping session does not leave the pool inflated. `removed` still
  // pins them, and so do group memos keyed on routes this peer sourced —
  // drop both first or the sweep frees nothing.
  clear_group_memos();
  removed.clear();
  attr_pool_.sweep();
  metrics_->trace().emit(
      loop_->now(), "bgp", "session_down",
      {{"speaker", name_}, {"peer", s.config.name}, {"reason", reason}});
  note_transition(peer, SessionState::kIdle);
}

std::size_t BgpSpeaker::memory_bytes() const {
  std::size_t bytes = attr_pool_.memory_bytes() + loc_rib_.memory_bytes();
  for (const auto& [id, session] : sessions_)
    bytes += session->adj_in.memory_bytes();
  bytes += originated_.size() * (sizeof(Ipv4Prefix) + sizeof(AttrsPtr) +
                                 4 * sizeof(void*));
  return bytes;
}

void BgpSpeaker::publish_metrics(obs::Registry& registry) const {
  auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  obs::Labels labels{{"speaker", name_}};
  const AttrPool::Stats& pool = attr_pool_.stats();
  registry.gauge("bgp_attr_pool_sets", labels)->set(i64(attr_pool_.size()));
  registry.gauge("bgp_attr_pool_bytes", labels)
      ->set(i64(attr_pool_.memory_bytes()));
  registry.gauge("bgp_attr_encode_cache_bytes", labels)
      ->set(i64(attr_pool_.encode_cache_bytes()));
  registry.gauge("bgp_attr_intern_hits", labels)->set(i64(pool.intern_hits));
  registry.gauge("bgp_attr_intern_misses", labels)
      ->set(i64(pool.intern_misses));
  registry.gauge("bgp_attr_encode_hits", labels)->set(i64(pool.encode_hits));
  registry.gauge("bgp_attr_encode_misses", labels)
      ->set(i64(pool.encode_misses));
  registry.gauge("bgp_locrib_prefixes", labels)
      ->set(i64(loc_rib_.prefix_count()));
  registry.gauge("bgp_locrib_paths", labels)->set(i64(loc_rib_.route_count()));
  registry.gauge("bgp_memory_bytes", labels)->set(i64(memory_bytes()));
  registry.gauge("bgp_pipeline_partitions", labels)
      ->set(static_cast<std::int64_t>(pmap_.partitions()));
  registry.gauge("bgp_pipeline_workers", labels)
      ->set(static_cast<std::int64_t>(pipeline_.workers));
  registry.gauge("bgp_export_group_count", labels)
      ->set(static_cast<std::int64_t>(groups_.size()));

  for (const auto& [id, session] : sessions_) {
    (void)id;
    const Session& s = *session;
    obs::Labels peer_labels = labels;
    peer_labels.emplace_back("peer", s.config.name);
    registry.gauge("bgp_peer_session_up", peer_labels)
        ->set(s.state == SessionState::kEstablished ? 1 : 0);
    registry.gauge("bgp_peer_routes_rejected_import", peer_labels)
        ->set(i64(s.stats.routes_rejected_import));
    registry.gauge("bgp_peer_keepalives_in", peer_labels)
        ->set(i64(s.stats.keepalives_received));
    registry.gauge("bgp_peer_notifications_in", peer_labels)
        ->set(i64(s.stats.notifications_received));
    registry.gauge("bgp_peer_notifications_out", peer_labels)
        ->set(i64(s.stats.notifications_sent));
    registry.gauge("bgp_peer_encode_cache_hits", peer_labels)
        ->set(i64(s.stats.attr_encode_cache_hits));
    registry.gauge("bgp_peer_encode_cache_misses", peer_labels)
        ->set(i64(s.stats.attr_encode_cache_misses));
    registry.gauge("bgp_peer_adj_rib_in_routes", peer_labels)
        ->set(i64(s.adj_in.size()));
  }
}

}  // namespace peering::bgp
