// BGP-4 messages (RFC 4271) with the capabilities PEERING relies on:
// 4-octet AS numbers (RFC 6793) and ADD-PATH (RFC 7911), the mechanism vBGP
// uses to expose every neighbor's route to every experiment over a single
// session. Includes an incremental wire decoder for the TCP byte stream.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/types.h"
#include "netbase/bytes.h"
#include "netbase/prefix.h"
#include "netbase/result.h"

namespace peering::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
  kRouteRefresh = 5,
};

/// Capability codes (RFC 5492 registry subset).
enum class CapabilityCode : std::uint8_t {
  kMultiprotocol = 1,
  kRouteRefresh = 2,
  kFourByteAsn = 65,
  kAddPath = 69,
};

struct Capability {
  std::uint8_t code = 0;
  Bytes value;

  bool operator==(const Capability&) const = default;
};

/// ADD-PATH per-AFI/SAFI mode bits.
enum class AddPathMode : std::uint8_t {
  kNone = 0,
  kReceive = 1,
  kSend = 2,
  kBoth = 3,
};

struct OpenMessage {
  std::uint8_t version = 4;
  /// The 2-byte "My Autonomous System" field value; kAsTrans if the real
  /// ASN does not fit.
  Asn asn = 0;
  std::uint16_t hold_time = 90;
  Ipv4Address router_id;
  std::vector<Capability> capabilities;

  /// Appends a 4-octet-AS capability advertising `asn`.
  void add_four_byte_asn(Asn asn);
  /// Appends an ADD-PATH capability for IPv4 unicast with the given mode.
  void add_addpath_ipv4(AddPathMode mode);

  /// Extracts the 4-octet ASN if the capability is present.
  std::optional<Asn> four_byte_asn() const;
  /// Extracts the IPv4-unicast ADD-PATH mode (kNone if absent).
  AddPathMode addpath_ipv4() const;

  Bytes encode_body() const;
  static Result<OpenMessage> decode_body(std::span<const std::uint8_t> data);

  bool operator==(const OpenMessage&) const = default;
};

/// A prefix in an UPDATE, with its ADD-PATH identifier (meaningful only on
/// sessions that negotiated ADD-PATH; 0 otherwise).
struct NlriEntry {
  std::uint32_t path_id = 0;
  Ipv4Prefix prefix;

  bool operator==(const NlriEntry&) const = default;
};

/// Per-session codec state for UPDATE bodies.
struct UpdateCodecOptions {
  AttrCodecOptions attrs;
  /// True when ADD-PATH was negotiated in the encoding direction: every
  /// NLRI (and withdrawn route) is prefixed with a 4-byte path identifier.
  bool add_path = false;
};

struct UpdateMessage {
  std::vector<NlriEntry> withdrawn;
  /// Attributes; may be empty for withdraw-only updates.
  std::optional<PathAttributes> attributes;
  std::vector<NlriEntry> nlri;

  bool is_withdraw_only() const { return nlri.empty() && !withdrawn.empty(); }

  Bytes encode_body(const UpdateCodecOptions& options) const;
  static Result<UpdateMessage> decode_body(std::span<const std::uint8_t> data,
                                           const UpdateCodecOptions& options);

  bool operator==(const UpdateMessage&) const = default;
};

/// NOTIFICATION error codes (RFC 4271 §4.5).
enum class NotificationCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

struct NotificationMessage {
  NotificationCode code = NotificationCode::kCease;
  std::uint8_t subcode = 0;
  Bytes data;

  Bytes encode_body() const;
  static Result<NotificationMessage> decode_body(
      std::span<const std::uint8_t> data);
  std::string str() const;

  bool operator==(const NotificationMessage&) const = default;
};

struct KeepaliveMessage {
  bool operator==(const KeepaliveMessage&) const = default;
};

/// ROUTE-REFRESH (RFC 2918): asks the peer to resend its Adj-RIB-Out.
/// PEERING's configuration pushes rely on this to apply new policy to
/// already-learned routes without resetting sessions (§5).
struct RouteRefreshMessage {
  std::uint16_t afi = 1;  // IPv4
  std::uint8_t safi = 1;  // unicast

  Bytes encode_body() const;
  static Result<RouteRefreshMessage> decode_body(
      std::span<const std::uint8_t> data);

  bool operator==(const RouteRefreshMessage&) const = default;
};

using BgpMessage = std::variant<OpenMessage, UpdateMessage,
                                NotificationMessage, KeepaliveMessage,
                                RouteRefreshMessage>;

/// Frames `body` with the BGP header (marker, length, type).
Bytes frame_message(MessageType type, const Bytes& body);

/// Frames a complete UPDATE for advertised NLRI from pre-encoded
/// path-attribute bytes (the AttrPool encode cache): the hot transmit path
/// used by BgpSpeaker's export flush, which skips re-serializing the
/// attribute set for every session that shares the same codec options.
Bytes encode_update_from_cached(const Bytes& attr_bytes,
                                const std::vector<NlriEntry>& nlri,
                                const UpdateCodecOptions& options);

/// Like encode_update_from_cached, but patches a per-neighbor next-hop
/// into the framed message at `nh_offset` (the NEXT_HOP value offset
/// inside `attr_bytes`, from AttrPool::encoded). The cached template is
/// never modified — the splice lands in the freshly framed copy. Pass
/// bgp::kNoNextHopOffset to skip the patch.
Bytes encode_update_spliced(const Bytes& attr_bytes, std::size_t nh_offset,
                            Ipv4Address next_hop,
                            const std::vector<NlriEntry>& nlri,
                            const UpdateCodecOptions& options);

/// Appends the spliced UPDATE directly onto `out` — the flush path
/// accumulates every message for a peer into one coalesced send buffer,
/// so the intermediate per-message allocation is pure overhead.
void encode_update_spliced_into(Bytes& out, const Bytes& attr_bytes,
                                std::size_t nh_offset, Ipv4Address next_hop,
                                const std::vector<NlriEntry>& nlri,
                                const UpdateCodecOptions& options);

/// Serializes a full message.
Bytes encode_message(const BgpMessage& message,
                     const UpdateCodecOptions& options);

/// Incremental decoder: feed stream bytes, poll complete messages out.
/// Options are mutable because ADD-PATH/4-byte-ASN are negotiated by the
/// OPEN exchange, after the decoder is constructed.
class MessageDecoder {
 public:
  void set_options(const UpdateCodecOptions& options) { options_ = options; }
  const UpdateCodecOptions& options() const { return options_; }

  /// Appends received bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> data);

  /// Returns the next complete message, std::nullopt if more bytes are
  /// needed, or an Error for an unrecoverable framing/parse failure (the
  /// session should send a NOTIFICATION and close).
  Result<std::optional<BgpMessage>> poll();

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;
  UpdateCodecOptions options_;
};

}  // namespace peering::bgp
