#include "bgp/types.h"

namespace peering::bgp {

std::size_t AsPath::decision_length() const {
  std::size_t len = 0;
  for (const auto& seg : segments_) {
    if (seg.type == AsPathSegmentType::kSequence)
      len += seg.asns.size();
    else
      len += 1;
  }
  return len;
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_)
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  return out;
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments_)
    for (Asn a : seg.asns)
      if (a == asn) return true;
  return false;
}

Asn AsPath::first() const {
  for (const auto& seg : segments_)
    if (!seg.asns.empty()) return seg.asns.front();
  return 0;
}

Asn AsPath::origin_asn() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it)
    if (!it->asns.empty()) return it->asns.back();
  return 0;
}

AsPath AsPath::prepended(Asn asn, std::size_t count) const {
  AsPath out = *this;
  if (count == 0) return out;
  if (out.segments_.empty() ||
      out.segments_.front().type != AsPathSegmentType::kSequence) {
    out.segments_.insert(out.segments_.begin(),
                         {AsPathSegmentType::kSequence, {}});
  }
  auto& front = out.segments_.front().asns;
  front.insert(front.begin(), count, asn);
  return out;
}

std::string AsPath::str() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (!out.empty()) out += ' ';
    if (seg.type == AsPathSegmentType::kSet) {
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    } else {
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ' ';
        out += std::to_string(seg.asns[i]);
      }
    }
  }
  return out;
}

}  // namespace peering::bgp
