#include "bgp/message.h"

#include <algorithm>

namespace peering::bgp {

namespace {

constexpr std::size_t kHeaderSize = 19;
constexpr std::size_t kMaxMessageSize = 4096;

/// Encodes one prefix (with optional ADD-PATH id) into NLRI wire format:
/// [path-id (4B, optional)] length (1B) | address bytes (ceil(len/8)).
void encode_nlri_entry(ByteWriter& w, const NlriEntry& entry, bool add_path) {
  if (add_path) w.u32(entry.path_id);
  w.u8(entry.prefix.length());
  std::uint32_t addr = entry.prefix.address().value();
  int bytes = (entry.prefix.length() + 7) / 8;
  for (int i = 0; i < bytes; ++i)
    w.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
}

Result<NlriEntry> decode_nlri_entry(ByteReader& r, bool add_path) {
  NlriEntry entry;
  if (add_path) {
    auto id = r.u32();
    if (!id) return Error("nlri: truncated path id");
    entry.path_id = *id;
  }
  auto len = r.u8();
  if (!len) return Error("nlri: truncated length");
  if (*len > 32) return Error("nlri: prefix length > 32");
  int bytes = (*len + 7) / 8;
  std::uint32_t addr = 0;
  for (int i = 0; i < bytes; ++i) {
    auto b = r.u8();
    if (!b) return Error("nlri: truncated prefix");
    addr |= static_cast<std::uint32_t>(*b) << (24 - 8 * i);
  }
  entry.prefix = Ipv4Prefix(Ipv4Address(addr), *len);
  return entry;
}

}  // namespace

void OpenMessage::add_four_byte_asn(Asn real_asn) {
  ByteWriter w;
  w.u32(real_asn);
  capabilities.push_back(
      {static_cast<std::uint8_t>(CapabilityCode::kFourByteAsn), w.take()});
}

void OpenMessage::add_addpath_ipv4(AddPathMode mode) {
  ByteWriter w;
  w.u16(1);  // AFI: IPv4
  w.u8(1);   // SAFI: unicast
  w.u8(static_cast<std::uint8_t>(mode));
  capabilities.push_back(
      {static_cast<std::uint8_t>(CapabilityCode::kAddPath), w.take()});
}

std::optional<Asn> OpenMessage::four_byte_asn() const {
  for (const auto& cap : capabilities) {
    if (cap.code != static_cast<std::uint8_t>(CapabilityCode::kFourByteAsn))
      continue;
    ByteReader r(cap.value);
    auto asn = r.u32();
    if (asn) return *asn;
  }
  return std::nullopt;
}

AddPathMode OpenMessage::addpath_ipv4() const {
  for (const auto& cap : capabilities) {
    if (cap.code != static_cast<std::uint8_t>(CapabilityCode::kAddPath))
      continue;
    ByteReader r(cap.value);
    while (r.remaining() >= 4) {
      auto afi = r.u16();
      auto safi = r.u8();
      auto mode = r.u8();
      if (afi && safi && mode && *afi == 1 && *safi == 1)
        return static_cast<AddPathMode>(*mode & 3);
    }
  }
  return AddPathMode::kNone;
}

Bytes OpenMessage::encode_body() const {
  ByteWriter w;
  w.u8(version);
  w.u16(asn > 0xffff ? static_cast<std::uint16_t>(kAsTrans)
                     : static_cast<std::uint16_t>(asn));
  w.u16(hold_time);
  w.u32(router_id.value());
  // Optional parameters: one capabilities parameter (type 2) per capability.
  ByteWriter params;
  for (const auto& cap : capabilities) {
    params.u8(2);  // parameter type: capabilities
    params.u8(static_cast<std::uint8_t>(cap.value.size() + 2));
    params.u8(cap.code);
    params.u8(static_cast<std::uint8_t>(cap.value.size()));
    params.raw(cap.value);
  }
  w.u8(static_cast<std::uint8_t>(params.size()));
  w.raw(params.bytes());
  return w.take();
}

Result<OpenMessage> OpenMessage::decode_body(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  OpenMessage msg;
  auto version = r.u8();
  if (!version) return Error("open: truncated", 2);
  if (*version != 4) return Error("open: unsupported version", 1);
  msg.version = *version;
  auto asn = r.u16();
  auto hold = r.u16();
  auto router_id = r.u32();
  auto params_len = r.u8();
  if (!asn || !hold || !router_id || !params_len)
    return Error("open: truncated", 2);
  if (*hold != 0 && *hold < 3) return Error("open: bad hold time", 6);
  msg.asn = *asn;
  msg.hold_time = *hold;
  msg.router_id = Ipv4Address(*router_id);
  auto params = r.sub(*params_len);
  if (!params) return Error("open: truncated parameters", 2);
  while (!params->empty()) {
    auto type = params->u8();
    auto len = params->u8();
    if (!type || !len) return Error("open: truncated parameter", 2);
    auto body = params->sub(*len);
    if (!body) return Error("open: truncated parameter body", 2);
    if (*type != 2) continue;  // ignore non-capability parameters
    while (!body->empty()) {
      auto code = body->u8();
      auto clen = body->u8();
      if (!code || !clen) return Error("open: truncated capability", 2);
      auto value = body->bytes(*clen);
      if (!value) return Error("open: truncated capability value", 2);
      msg.capabilities.push_back({*code, std::move(*value)});
    }
  }
  return msg;
}

Bytes UpdateMessage::encode_body(const UpdateCodecOptions& options) const {
  ByteWriter w;
  ByteWriter withdrawn_writer;
  for (const auto& entry : withdrawn)
    encode_nlri_entry(withdrawn_writer, entry, options.add_path);
  w.u16(static_cast<std::uint16_t>(withdrawn_writer.size()));
  w.raw(withdrawn_writer.bytes());

  Bytes attr_bytes;
  if (attributes) attr_bytes = encode_attributes(*attributes, options.attrs);
  w.u16(static_cast<std::uint16_t>(attr_bytes.size()));
  w.raw(attr_bytes);

  for (const auto& entry : nlri) encode_nlri_entry(w, entry, options.add_path);
  return w.take();
}

Result<UpdateMessage> UpdateMessage::decode_body(
    std::span<const std::uint8_t> data, const UpdateCodecOptions& options) {
  ByteReader r(data);
  UpdateMessage msg;
  auto withdrawn_len = r.u16();
  if (!withdrawn_len) return Error("update: truncated", 1);
  auto withdrawn = r.sub(*withdrawn_len);
  if (!withdrawn) return Error("update: truncated withdrawn", 1);
  while (!withdrawn->empty()) {
    auto entry = decode_nlri_entry(*withdrawn, options.add_path);
    if (!entry) return entry.error();
    msg.withdrawn.push_back(*entry);
  }
  auto attrs_len = r.u16();
  if (!attrs_len) return Error("update: truncated attr length", 1);
  auto attr_bytes = r.raw(*attrs_len);
  if (!attr_bytes) return Error("update: truncated attributes", 1);
  if (*attrs_len > 0) {
    auto attrs = decode_attributes(*attr_bytes, options.attrs);
    if (!attrs) return attrs.error();
    msg.attributes = std::move(*attrs);
  }
  while (!r.empty()) {
    auto entry = decode_nlri_entry(r, options.add_path);
    if (!entry) return entry.error();
    msg.nlri.push_back(*entry);
  }
  if (!msg.nlri.empty() && !msg.attributes)
    return Error("update: NLRI without attributes", 3);
  return msg;
}

Bytes NotificationMessage::encode_body() const {
  ByteWriter w(2 + data.size());
  w.u8(static_cast<std::uint8_t>(code));
  w.u8(subcode);
  w.raw(data);
  return w.take();
}

Result<NotificationMessage> NotificationMessage::decode_body(
    std::span<const std::uint8_t> data) {
  if (data.size() < 2) return Error("notification: truncated");
  NotificationMessage msg;
  msg.code = static_cast<NotificationCode>(data[0]);
  msg.subcode = data[1];
  msg.data.assign(data.begin() + 2, data.end());
  return msg;
}

std::string NotificationMessage::str() const {
  static const char* names[] = {"?",           "header-error", "open-error",
                                "update-error", "hold-expired", "fsm-error",
                                "cease"};
  unsigned idx = static_cast<unsigned>(code);
  const char* name = idx < 7 ? names[idx] : "?";
  return std::string(name) + "/" + std::to_string(subcode);
}

Bytes RouteRefreshMessage::encode_body() const {
  ByteWriter w(4);
  w.u16(afi);
  w.u8(0);  // reserved
  w.u8(safi);
  return w.take();
}

Result<RouteRefreshMessage> RouteRefreshMessage::decode_body(
    std::span<const std::uint8_t> data) {
  if (data.size() != 4) return Error("route-refresh: bad length");
  RouteRefreshMessage msg;
  msg.afi = static_cast<std::uint16_t>((data[0] << 8) | data[1]);
  msg.safi = data[3];
  return msg;
}

Bytes frame_message(MessageType type, const Bytes& body) {
  ByteWriter w(kHeaderSize + body.size());
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + body.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  return w.take();
}

Bytes encode_update_from_cached(const Bytes& attr_bytes,
                                const std::vector<NlriEntry>& nlri,
                                const UpdateCodecOptions& options) {
  // Header + empty-withdrawn length + attr length + attrs + NLRI (path id
  // plus up to 5 prefix bytes each).
  ByteWriter w(kHeaderSize + 4 + attr_bytes.size() + nlri.size() * 9);
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  std::size_t length_at = w.reserve_u16();
  w.u8(static_cast<std::uint8_t>(MessageType::kUpdate));
  w.u16(0);  // no withdrawn routes
  w.u16(static_cast<std::uint16_t>(attr_bytes.size()));
  w.raw(attr_bytes);
  for (const auto& entry : nlri) encode_nlri_entry(w, entry, options.add_path);
  w.patch_u16(length_at, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

Bytes encode_update_spliced(const Bytes& attr_bytes, std::size_t nh_offset,
                            Ipv4Address next_hop,
                            const std::vector<NlriEntry>& nlri,
                            const UpdateCodecOptions& options) {
  Bytes wire;
  encode_update_spliced_into(wire, attr_bytes, nh_offset, next_hop, nlri,
                             options);
  return wire;
}

void encode_update_spliced_into(Bytes& out, const Bytes& attr_bytes,
                                std::size_t nh_offset, Ipv4Address next_hop,
                                const std::vector<NlriEntry>& nlri,
                                const UpdateCodecOptions& options) {
  ByteWriter w(std::move(out));
  const std::size_t start = w.size();
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  std::size_t length_at = w.reserve_u16();
  w.u8(static_cast<std::uint8_t>(MessageType::kUpdate));
  w.u16(0);  // no withdrawn routes
  w.u16(static_cast<std::uint16_t>(attr_bytes.size()));
  w.raw(attr_bytes);
  if (nh_offset != kNoNextHopOffset) {
    // Layout: header (19) + withdrawn-len (2) + attr-len (2) + attrs.
    const std::size_t at = start + kHeaderSize + 4 + nh_offset;
    w.patch_u16(at, static_cast<std::uint16_t>(next_hop.value() >> 16));
    w.patch_u16(at + 2, static_cast<std::uint16_t>(next_hop.value()));
  }
  for (const auto& entry : nlri) encode_nlri_entry(w, entry, options.add_path);
  w.patch_u16(length_at, static_cast<std::uint16_t>(w.size() - start));
  out = w.take();
}

Bytes encode_message(const BgpMessage& message,
                     const UpdateCodecOptions& options) {
  if (const auto* open = std::get_if<OpenMessage>(&message))
    return frame_message(MessageType::kOpen, open->encode_body());
  if (const auto* update = std::get_if<UpdateMessage>(&message))
    return frame_message(MessageType::kUpdate, update->encode_body(options));
  if (const auto* notification = std::get_if<NotificationMessage>(&message))
    return frame_message(MessageType::kNotification,
                         notification->encode_body());
  if (const auto* refresh = std::get_if<RouteRefreshMessage>(&message))
    return frame_message(MessageType::kRouteRefresh, refresh->encode_body());
  return frame_message(MessageType::kKeepalive, {});
}

void MessageDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact the buffer occasionally to bound memory.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 64 * 1024) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Result<std::optional<BgpMessage>> MessageDecoder::poll() {
  std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return std::optional<BgpMessage>{};
  std::span<const std::uint8_t> view(buffer_.data() + consumed_, available);
  // Validate the marker.
  for (int i = 0; i < 16; ++i) {
    if (view[static_cast<std::size_t>(i)] != 0xff)
      return Error("header: bad marker", 1);
  }
  std::uint16_t length = static_cast<std::uint16_t>((view[16] << 8) | view[17]);
  if (length < kHeaderSize || length > kMaxMessageSize)
    return Error("header: bad length", 2);
  if (available < length) return std::optional<BgpMessage>{};
  std::uint8_t type = view[18];
  auto body = view.subspan(kHeaderSize, length - kHeaderSize);
  consumed_ += length;

  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen: {
      auto msg = OpenMessage::decode_body(body);
      if (!msg) return msg.error();
      return std::optional<BgpMessage>(std::move(*msg));
    }
    case MessageType::kUpdate: {
      auto msg = UpdateMessage::decode_body(body, options_);
      if (!msg) return msg.error();
      return std::optional<BgpMessage>(std::move(*msg));
    }
    case MessageType::kNotification: {
      auto msg = NotificationMessage::decode_body(body);
      if (!msg) return msg.error();
      return std::optional<BgpMessage>(std::move(*msg));
    }
    case MessageType::kKeepalive: {
      if (!body.empty()) return Error("keepalive: nonempty body", 2);
      return std::optional<BgpMessage>(KeepaliveMessage{});
    }
    case MessageType::kRouteRefresh: {
      auto msg = RouteRefreshMessage::decode_body(body);
      if (!msg) return msg.error();
      return std::optional<BgpMessage>(std::move(*msg));
    }
  }
  return Error("header: unknown message type", 3);
}

}  // namespace peering::bgp
