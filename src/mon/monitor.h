// BMP-flavored (RFC 7854) route monitoring plane. A MonitorSession
// attaches to one bgp::BgpSpeaker through the MonitorTap interface and
// records a deterministic, seed-stable event stream: peer up/down
// notifications, route-monitoring records mirroring the Adj-RIB-In feed
// pre- and post-policy, and periodic per-peer statistics reports rendered
// from the obs::Snapshot API. Records can be rendered as JSON-lines or as
// a binary BMP-flavored byte stream; either rendering is byte-identical
// across same-seed runs at any pipeline partition/worker count (the
// speaker emits tap callbacks in a canonical order — see bgp::MonitorTap).
//
// A MonitoringStation aggregates streams from many sessions (one per
// router across a backbone) in arrival order, playing the role RouteViews
// or RIPE RIS collectors play for the real platform (§8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bgp/speaker.h"
#include "netbase/bytes.h"
#include "netbase/time.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace peering::mon {

class MonitoringStation;
class PropagationTracer;

/// Record types, numbered as the BMP message types they mirror
/// (RFC 7854 §4: Route Monitoring = 0, Statistics Report = 1,
/// Peer Down = 2, Peer Up = 3).
enum class RecordType : std::uint8_t {
  kRouteMonitoring = 0,
  kStatsReport = 1,
  kPeerDown = 2,
  kPeerUp = 3,
};

const char* record_type_name(RecordType type);

/// One monitoring record. Cheap to buffer: attribute sets ride along as
/// interned pointers; rendering (JSONL or binary) is deferred until asked.
struct MonitorRecord {
  std::uint64_t seq = 0;  // 1-based, monotone per session
  SimTime at;
  RecordType type = RecordType::kRouteMonitoring;
  /// BMP per-peer header L flag: false = pre-policy Adj-RIB-In mirror,
  /// true = post-policy (Loc-RIB candidate view).
  bool post_policy = false;
  bool withdrawn = false;
  bgp::PeerId peer = 0;  // session peer (route records: the origin peer)
  std::uint32_t path_id = 0;
  Ipv4Prefix prefix;
  bgp::AttrsPtr attrs;  // null for withdraws and non-route records
  /// Peer-down reason / rendered stats-report body.
  std::string info;
};

class MonitorSession : public bgp::MonitorTap {
 public:
  struct Options {
    /// Record buffer bound; past it new records are dropped (and counted).
    std::size_t capacity = 1 << 16;
    /// Mirror the pre-policy Adj-RIB-In feed (BMP L=0 route monitoring).
    bool pre_policy = true;
    /// Mirror post-policy route-set changes (BMP L=1 route monitoring).
    bool post_policy = true;
  };

  /// Attaches to `speaker` (one monitor per speaker; a later session
  /// displaces an earlier one). Destroy the session before the speaker.
  MonitorSession(sim::EventLoop* loop, bgp::BgpSpeaker* speaker,
                 Options options);
  MonitorSession(sim::EventLoop* loop, bgp::BgpSpeaker* speaker);
  ~MonitorSession() override;

  MonitorSession(const MonitorSession&) = delete;
  MonitorSession& operator=(const MonitorSession&) = delete;

  /// Stops observing the speaker (idempotent; also run by the destructor).
  void detach();

  const std::string& speaker_name() const { return name_; }
  const std::vector<MonitorRecord>& records() const { return records_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Forward every record to an in-sim monitoring station as it is made.
  void set_station(MonitoringStation* station) { station_ = station; }
  /// Feed post-policy installs into a propagation tracer (time-to-Loc-RIB).
  void set_tracer(PropagationTracer* tracer) { tracer_ = tracer; }

  /// Emits one statistics-report record per established peer every
  /// `interval`, rendered from the obs::Snapshot of the speaker's
  /// published metrics. Call once; Duration 0 disables.
  void enable_stats_reports(Duration interval);

  /// Deterministic JSON-lines rendering, one record per line.
  std::string to_jsonl() const;
  /// Binary BMP-flavored stream: per record, a common header
  /// (version=3, u32 length, u8 type) + per-peer header (u32 peer,
  /// u8 flags [bit0 = post-policy], u64 sim-ns timestamp) + a
  /// type-specific body. Route monitoring bodies carry the canonical
  /// (4-byte-ASN) attribute encoding, so the stream is codec-independent.
  Bytes encode() const;

  // bgp::MonitorTap:
  void on_peer_state(bgp::PeerId peer, bgp::SessionState state) override;
  void on_route_pre_policy(bgp::PeerId from, const bgp::NlriEntry& entry,
                           const bgp::AttrsPtr& attrs) override;
  void on_route_post_policy(const bgp::RibRoute& route,
                            bool withdrawn) override;

 private:
  /// Appends a blank record (seq/timestamp assigned) or counts a drop and
  /// returns null when the buffer is at capacity. Hot callbacks fill the
  /// slot in place; cold paths go through push().
  MonitorRecord* append();
  void push(MonitorRecord record);
  void emit_stats_reports();
  void schedule_stats();
  std::string peer_name(bgp::PeerId peer) const;

  sim::EventLoop* loop_;
  bgp::BgpSpeaker* speaker_;
  Options options_;
  std::string name_;
  std::vector<MonitorRecord> records_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dropped_ = 0;
  MonitoringStation* station_ = nullptr;
  PropagationTracer* tracer_ = nullptr;
  Duration stats_interval_;
  /// Liveness token for the recurring stats event: the scheduled lambda
  /// holds a weak_ptr, so a destroyed session simply stops the chain.
  std::shared_ptr<std::uint64_t> stats_gen_;
  obs::Counter* obs_records_;
  obs::Counter* obs_dropped_;
};

/// In-sim monitoring station: the collector end of one or more
/// MonitorSessions. Records arrive in event-loop order (deterministic) and
/// keep their originating speaker's name.
class MonitoringStation {
 public:
  explicit MonitoringStation(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void deliver(const std::string& speaker, const MonitorRecord& record);

  std::size_t record_count() const { return feed_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Merged JSON-lines feed, arrival order, speaker-tagged.
  std::string to_jsonl() const;

 private:
  struct Entry {
    std::string speaker;
    MonitorRecord record;
  };
  std::size_t capacity_;
  std::vector<Entry> feed_;
  std::uint64_t dropped_ = 0;
};

/// Renders one record as a JSON object (no trailing newline). `speaker` is
/// included when non-empty (the station's merged feed uses it).
std::string render_record_json(const MonitorRecord& record,
                               const std::string& speaker,
                               const std::string& peer_name);

}  // namespace peering::mon
