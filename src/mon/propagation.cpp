#include "mon/propagation.h"

#include <algorithm>

namespace peering::mon {

PropagationTracer::PropagationTracer() : registry_(obs::Registry::global()) {}

void PropagationTracer::stamp_origin(const Ipv4Prefix& prefix, SimTime at) {
  // A fresh stamp starts a new measurement wave for this prefix: resetting
  // the observer masks is the O(1) equivalent of purging every
  // (observer, prefix) pair.
  Origin& origin = origins_[prefix];
  origin.at = at;
  origin.locrib_seen = 0;
  origin.fib_seen = 0;
}

PropagationTracer::Observer& PropagationTracer::observer(
    std::map<std::string, Observer>& index, const std::string& name,
    const char* metric, const char* label) {
  auto it = index.find(name);
  if (it != index.end()) return it->second;
  Observer entry;
  entry.bit = 1ull << std::min(index.size(), kMaxObservers - 1);
  entry.hist = registry_->histogram(metric, {{label, name}});
  return index.emplace(name, entry).first->second;
}

obs::Histogram* PropagationTracer::time_to_locrib(const std::string& speaker) {
  if (speaker == kAll) return locrib_aggregate();
  return observer(locrib_observers_, speaker, "mon_time_to_locrib_ns",
                  "speaker")
      .hist;
}

obs::Histogram* PropagationTracer::locrib_aggregate() {
  if (locrib_all_ == nullptr) {
    locrib_all_ =
        registry_->histogram("mon_time_to_locrib_ns", {{"speaker", kAll}});
  }
  return locrib_all_;
}

obs::Histogram* PropagationTracer::fib_aggregate() {
  if (fib_all_ == nullptr) {
    fib_all_ = registry_->histogram("mon_time_to_fib_ns", {{"router", kAll}});
  }
  return fib_all_;
}

obs::Histogram* PropagationTracer::time_to_fib(const std::string& router) {
  if (router == kAll) return fib_aggregate();
  return observer(fib_observers_, router, "mon_time_to_fib_ns", "router").hist;
}

void PropagationTracer::note_locrib(const std::string& speaker,
                                    const Ipv4Prefix& prefix, SimTime at) {
  auto oit = origins_.find(prefix);
  if (oit == origins_.end()) return;
  Observer& seen = observer(locrib_observers_, speaker, "mon_time_to_locrib_ns",
                           "speaker");
  if (oit->second.locrib_seen & seen.bit) return;
  oit->second.locrib_seen |= seen.bit;
  auto ns = (at - oit->second.at).ns();
  std::uint64_t v = ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
  seen.hist->record(v);
  locrib_aggregate()->record(v);
  ++locrib_samples_;
}

void PropagationTracer::note_fib(const std::string& router,
                                 const Ipv4Prefix& prefix, SimTime at) {
  auto oit = origins_.find(prefix);
  if (oit == origins_.end()) return;
  Observer& seen = observer(fib_observers_, router, "mon_time_to_fib_ns",
                           "router");
  if (oit->second.fib_seen & seen.bit) return;
  oit->second.fib_seen |= seen.bit;
  auto ns = (at - oit->second.at).ns();
  std::uint64_t v = ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
  seen.hist->record(v);
  fib_aggregate()->record(v);
  ++fib_samples_;
}

}  // namespace peering::mon
