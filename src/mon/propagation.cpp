#include "mon/propagation.h"

namespace peering::mon {

PropagationTracer::PropagationTracer() : registry_(obs::Registry::global()) {}

void PropagationTracer::stamp_origin(const Ipv4Prefix& prefix, SimTime at) {
  origins_[prefix] = at;
  // A fresh stamp starts a new measurement wave for this prefix.
  auto purge = [&](std::set<std::pair<std::string, Ipv4Prefix>>& seen) {
    for (auto it = seen.begin(); it != seen.end();) {
      if (it->second == prefix) {
        it = seen.erase(it);
      } else {
        ++it;
      }
    }
  };
  purge(seen_locrib_);
  purge(seen_fib_);
}

obs::Histogram* PropagationTracer::time_to_locrib(const std::string& speaker) {
  auto it = locrib_hist_.find(speaker);
  if (it != locrib_hist_.end()) return it->second;
  obs::Histogram* h = registry_->histogram("mon_time_to_locrib_ns",
                                           {{"speaker", speaker}});
  locrib_hist_.emplace(speaker, h);
  return h;
}

obs::Histogram* PropagationTracer::time_to_fib(const std::string& router) {
  auto it = fib_hist_.find(router);
  if (it != fib_hist_.end()) return it->second;
  obs::Histogram* h =
      registry_->histogram("mon_time_to_fib_ns", {{"router", router}});
  fib_hist_.emplace(router, h);
  return h;
}

void PropagationTracer::note_locrib(const std::string& speaker,
                                    const Ipv4Prefix& prefix, SimTime at) {
  auto oit = origins_.find(prefix);
  if (oit == origins_.end()) return;
  if (!seen_locrib_.emplace(speaker, prefix).second) return;
  auto ns = (at - oit->second).ns();
  std::uint64_t v = ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
  time_to_locrib(speaker)->record(v);
  locrib_aggregate()->record(v);
  ++locrib_samples_;
}

void PropagationTracer::note_fib(const std::string& router,
                                 const Ipv4Prefix& prefix, SimTime at) {
  auto oit = origins_.find(prefix);
  if (oit == origins_.end()) return;
  if (!seen_fib_.emplace(router, prefix).second) return;
  auto ns = (at - oit->second).ns();
  std::uint64_t v = ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
  time_to_fib(router)->record(v);
  fib_aggregate()->record(v);
  ++fib_samples_;
}

}  // namespace peering::mon
