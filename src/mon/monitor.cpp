#include "mon/monitor.h"

#include <algorithm>
#include <utility>

#include "mon/propagation.h"
#include "netbase/bytes.h"

namespace peering::mon {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// record fields are short ASCII identifiers and reasons.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      const char* hex = "0123456789abcdef";
      out.push_back(hex[(c >> 4) & 0xf]);
      out.push_back(hex[c & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kRouteMonitoring:
      return "route_monitoring";
    case RecordType::kStatsReport:
      return "stats_report";
    case RecordType::kPeerDown:
      return "peer_down";
    case RecordType::kPeerUp:
      return "peer_up";
  }
  return "?";
}

std::string render_record_json(const MonitorRecord& record,
                               const std::string& speaker,
                               const std::string& peer_name) {
  std::string out = "{\"seq\":" + std::to_string(record.seq) +
                    ",\"at_ns\":" + std::to_string(record.at.ns()) +
                    ",\"type\":\"" + record_type_name(record.type) + "\"";
  if (!speaker.empty()) out += ",\"speaker\":\"" + json_escape(speaker) + "\"";
  out += ",\"peer\":\"" + json_escape(peer_name) + "\"";
  if (record.type == RecordType::kRouteMonitoring) {
    out += std::string(",\"post_policy\":") +
           (record.post_policy ? "true" : "false");
    out += std::string(",\"withdrawn\":") +
           (record.withdrawn ? "true" : "false");
    out += ",\"prefix\":\"" + record.prefix.str() + "\"";
    out += ",\"path_id\":" + std::to_string(record.path_id);
    if (record.attrs) {
      const bgp::PathAttributes& a = *record.attrs;
      out += ",\"next_hop\":\"" + a.next_hop.str() + "\"";
      out += ",\"as_path\":\"" + json_escape(a.as_path.str()) + "\"";
      out += ",\"origin\":" +
             std::to_string(static_cast<unsigned>(a.origin));
      if (a.local_pref)
        out += ",\"local_pref\":" + std::to_string(*a.local_pref);
      if (a.med) out += ",\"med\":" + std::to_string(*a.med);
      if (!a.communities.empty())
        out += ",\"communities\":" + std::to_string(a.communities.size());
    }
  }
  if (!record.info.empty())
    out += ",\"info\":\"" + json_escape(record.info) + "\"";
  out += "}";
  return out;
}

MonitorSession::MonitorSession(sim::EventLoop* loop, bgp::BgpSpeaker* speaker,
                               Options options)
    : loop_(loop),
      speaker_(speaker),
      options_(options),
      name_(speaker->name()),
      stats_gen_(std::make_shared<std::uint64_t>(0)) {
  obs::Labels labels{{"speaker", name_}};
  obs::Registry* registry = obs::Registry::global();
  obs_records_ = registry->counter("mon_records_total", labels);
  obs_dropped_ = registry->counter("mon_records_dropped_total", labels);
  // Reserve the record buffer up front (bounded at 1<<17 entries, ~12MB):
  // records carry shared_ptr/string members, so letting the vector grow
  // geometrically would move every buffered record several times over and
  // the churn shows up in the fig6b telemetry-overhead measurement.
  records_.reserve(std::min(options_.capacity, std::size_t{1} << 17));
  speaker_->set_monitor(this);
}

MonitorSession::MonitorSession(sim::EventLoop* loop, bgp::BgpSpeaker* speaker)
    : MonitorSession(loop, speaker, Options{}) {}

MonitorSession::~MonitorSession() { detach(); }

void MonitorSession::detach() {
  ++*stats_gen_;  // stops the recurring stats chain
  if (speaker_ != nullptr && speaker_->monitor() == this)
    speaker_->set_monitor(nullptr);
  speaker_ = nullptr;
}

std::string MonitorSession::peer_name(bgp::PeerId peer) const {
  if (peer == bgp::kLocalRoutes) return "local";
  if (speaker_ == nullptr) return std::to_string(peer);
  return speaker_->peer_config(peer).name;
}

MonitorRecord* MonitorSession::append() {
  if (records_.size() >= options_.capacity) {
    ++dropped_;
    obs_dropped_->inc();
    return nullptr;
  }
  records_.emplace_back();
  MonitorRecord& record = records_.back();
  record.seq = next_seq_++;
  record.at = loop_->now();
  obs_records_->inc();
  return &record;
}

void MonitorSession::push(MonitorRecord record) {
  MonitorRecord* slot = append();
  if (slot == nullptr) return;
  std::uint64_t seq = slot->seq;
  SimTime at = slot->at;
  *slot = std::move(record);
  slot->seq = seq;
  slot->at = at;
  if (station_ != nullptr) station_->deliver(name_, *slot);
}

void MonitorSession::on_peer_state(bgp::PeerId peer,
                                   bgp::SessionState state) {
  // BMP reports only the established/down edges; intermediate FSM states
  // are not peer-visible events.
  if (state == bgp::SessionState::kEstablished) {
    MonitorRecord r;
    r.type = RecordType::kPeerUp;
    r.peer = peer;
    push(std::move(r));
  } else if (state == bgp::SessionState::kIdle) {
    MonitorRecord r;
    r.type = RecordType::kPeerDown;
    r.peer = peer;
    push(std::move(r));
  }
}

void MonitorSession::on_route_pre_policy(bgp::PeerId from,
                                         const bgp::NlriEntry& entry,
                                         const bgp::AttrsPtr& attrs) {
  if (!options_.pre_policy) return;
  // Built in place (no temporary): this runs once per staged route, so the
  // record cost is part of the speaker's measured per-update budget.
  MonitorRecord* r = append();
  if (r == nullptr) return;
  r->type = RecordType::kRouteMonitoring;
  r->post_policy = false;
  r->withdrawn = attrs == nullptr;
  r->peer = from;
  r->path_id = entry.path_id;
  r->prefix = entry.prefix;
  r->attrs = attrs;
  if (station_ != nullptr) station_->deliver(name_, *r);
}

void MonitorSession::on_route_post_policy(const bgp::RibRoute& route,
                                          bool withdrawn) {
  if (tracer_ != nullptr && !withdrawn)
    tracer_->note_locrib(name_, route.prefix, loop_->now());
  if (!options_.post_policy) return;
  MonitorRecord* r = append();
  if (r == nullptr) return;
  r->type = RecordType::kRouteMonitoring;
  r->post_policy = true;
  r->withdrawn = withdrawn;
  r->peer = route.peer;
  r->path_id = route.path_id;
  r->prefix = route.prefix;
  if (!withdrawn) r->attrs = route.attrs;
  if (station_ != nullptr) station_->deliver(name_, *r);
}

void MonitorSession::enable_stats_reports(Duration interval) {
  ++*stats_gen_;  // supersede any previous chain
  stats_interval_ = interval;
  if (interval.ns() <= 0) return;
  schedule_stats();
}

void MonitorSession::schedule_stats() {
  std::weak_ptr<std::uint64_t> weak = stats_gen_;
  std::uint64_t gen = *stats_gen_;
  loop_->schedule_after(stats_interval_, [this, weak, gen]() {
    auto alive = weak.lock();
    if (!alive || *alive != gen) return;
    emit_stats_reports();
    schedule_stats();
  });
}

void MonitorSession::emit_stats_reports() {
  if (speaker_ == nullptr) return;
  // Rendered from the Snapshot API: publish the speaker's derived state
  // into a scratch registry and read the per-peer gauges back out — the
  // same values a platform-wide snapshot would carry for this speaker.
  obs::Registry scratch(true);
  speaker_->publish_metrics(scratch);
  obs::Snapshot snap = scratch.snapshot(loop_->now());
  for (bgp::PeerId peer : speaker_->peer_ids()) {
    if (speaker_->session_state(peer) != bgp::SessionState::kEstablished)
      continue;
    // Canonical label order (key-sorted): "peer" < "speaker".
    obs::Labels labels{{"peer", speaker_->peer_config(peer).name},
                       {"speaker", name_}};
    auto v = [&](std::string_view metric) {
      return std::to_string(snap.value(metric, labels));
    };
    MonitorRecord r;
    r.type = RecordType::kStatsReport;
    r.peer = peer;
    r.info = "adj_in=" + v("bgp_peer_adj_rib_in_routes") +
             " rejected=" + v("bgp_peer_routes_rejected_import") +
             " keepalives=" + v("bgp_peer_keepalives_in") +
             " notif_in=" + v("bgp_peer_notifications_in") +
             " notif_out=" + v("bgp_peer_notifications_out") +
             " encode_hits=" + v("bgp_peer_encode_cache_hits") +
             " encode_misses=" + v("bgp_peer_encode_cache_misses");
    push(std::move(r));
  }
}

std::string MonitorSession::to_jsonl() const {
  std::string out;
  for (const MonitorRecord& r : records_) {
    out += render_record_json(r, /*speaker=*/"", peer_name(r.peer));
    out += "\n";
  }
  return out;
}

Bytes MonitorSession::encode() const {
  ByteWriter w;
  // The canonical codec (4-byte ASN) regardless of what any session
  // negotiated: the stream's encoding must not depend on peer topology.
  const bgp::AttrCodecOptions canonical{};
  for (const MonitorRecord& r : records_) {
    ByteWriter body;
    switch (r.type) {
      case RecordType::kRouteMonitoring: {
        body.u8(r.withdrawn ? 1 : 0);
        body.u32(r.path_id);
        body.u32(r.prefix.address().value());
        body.u8(r.prefix.length());
        if (r.attrs) {
          Bytes attr_bytes = bgp::encode_attributes(*r.attrs, canonical);
          body.u16(static_cast<std::uint16_t>(attr_bytes.size()));
          body.raw(attr_bytes);
        } else {
          body.u16(0);
        }
        break;
      }
      case RecordType::kStatsReport:
      case RecordType::kPeerDown:
      case RecordType::kPeerUp: {
        body.u16(static_cast<std::uint16_t>(r.info.size()));
        body.raw(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(r.info.data()),
            r.info.size()));
        break;
      }
    }
    // Common header (version, length, type) + per-peer header.
    const std::size_t kCommon = 1 + 4 + 1;
    const std::size_t kPerPeer = 4 + 1 + 8;
    w.u8(3);  // BMP version
    w.u32(static_cast<std::uint32_t>(kCommon + kPerPeer + body.size()));
    w.u8(static_cast<std::uint8_t>(r.type));
    w.u32(r.peer);
    w.u8(r.post_policy ? 1 : 0);
    w.u64(static_cast<std::uint64_t>(r.at.ns()));
    w.raw(body.bytes());
  }
  return w.take();
}

void MonitoringStation::deliver(const std::string& speaker,
                                const MonitorRecord& record) {
  if (feed_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  feed_.push_back(Entry{speaker, record});
}

std::string MonitoringStation::to_jsonl() const {
  std::string out;
  for (const Entry& e : feed_) {
    // Peer ids are speaker-scoped; the merged feed tags the speaker and
    // renders the numeric id (names live in each session's own stream).
    out += render_record_json(e.record, e.speaker,
                              std::to_string(e.record.peer));
    out += "\n";
  }
  return out;
}

}  // namespace peering::mon
