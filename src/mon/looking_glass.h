// Looking glass: the operator-facing query side of the monitoring plane.
// Wraps one live bgp::BgpSpeaker and renders deterministic text answers —
// longest-prefix-match lookups against the Loc-RIB, per-peer
// Adj-RIB-In/Out dumps, and a best-path explanation narrating the
// RFC 4271 §9.1 decision steps. toolkit/client exposes this against live
// routers (`looking_glass(pop, query)`), mirroring the public looking
// glasses experimenters point at the real platform's muxes.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "bgp/speaker.h"

namespace peering::mon {

class LookingGlass {
 public:
  /// Non-owning; the speaker must outlive the glass. (Mutable because
  /// peer-name resolution reads PeerConfig through the speaker's non-const
  /// accessor — queries never modify speaker state.)
  explicit LookingGlass(bgp::BgpSpeaker* speaker) : speaker_(speaker) {}

  /// Longest-prefix match for an address against the Loc-RIB best paths.
  std::string lpm(Ipv4Address addr) const;

  /// Everything `peer` advertised to us, ascending (prefix, path_id).
  std::string dump_adj_rib_in(bgp::PeerId peer) const;

  /// Everything we advertised to `peer` (post-splice next-hops),
  /// ascending (prefix, local path id).
  std::string dump_adj_rib_out(bgp::PeerId peer) const;

  /// Candidate set for `prefix` plus the §9.1 rule that decided the best
  /// path.
  std::string explain_best(const Ipv4Prefix& prefix) const;

  /// Tenant queries delegate to the control plane: the resolver maps a
  /// tenant id to its rendered state (compiled policy, active PoPs,
  /// announced prefixes). Unset = the `tenant` verb reports unavailable.
  using TenantResolver = std::function<std::string(const std::string&)>;
  void set_tenant_resolver(TenantResolver resolver) {
    tenant_resolver_ = std::move(resolver);
  }

  /// Dispatches a one-line query:
  ///   "lpm <a.b.c.d>" | "adj-in <peer>" | "adj-out <peer>" |
  ///   "explain <a.b.c.d/len>" | "tenant <id>"
  /// where <peer> is a session name or numeric id. Unknown queries return
  /// a usage line (never throw).
  std::string query(const std::string& line) const;

 private:
  /// Peer by session name or decimal id; 0 when unknown.
  bgp::PeerId resolve_peer(const std::string& token) const;
  std::string render_route(const bgp::RibRoute& route) const;

  bgp::BgpSpeaker* speaker_;
  TenantResolver tenant_resolver_;
};

}  // namespace peering::mon
