#include "mon/looking_glass.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace peering::mon {

namespace {

std::string origin_name(bgp::Origin origin) {
  switch (origin) {
    case bgp::Origin::kIgp:
      return "igp";
    case bgp::Origin::kEgp:
      return "egp";
    case bgp::Origin::kIncomplete:
      return "incomplete";
  }
  return "?";
}

}  // namespace

bgp::PeerId LookingGlass::resolve_peer(const std::string& token) const {
  for (bgp::PeerId id : speaker_->peer_ids()) {
    if (speaker_->peer_config(id).name == token) return id;
  }
  char* end = nullptr;
  unsigned long v = std::strtoul(token.c_str(), &end, 10);
  if (end != token.c_str() && *end == '\0' && v != 0) {
    for (bgp::PeerId id : speaker_->peer_ids()) {
      if (id == static_cast<bgp::PeerId>(v)) return id;
    }
  }
  return 0;
}

std::string LookingGlass::render_route(const bgp::RibRoute& route) const {
  std::ostringstream os;
  const std::string peer =
      route.peer == bgp::kLocalRoutes
          ? "local"
          : speaker_->peer_config(route.peer).name;
  os << route.prefix.str() << " via " << route.attrs->next_hop.str()
     << " peer=" << peer << " path_id=" << route.path_id << " as_path=["
     << route.attrs->as_path.str() << "] origin="
     << origin_name(route.attrs->origin);
  if (route.attrs->local_pref)
    os << " local_pref=" << *route.attrs->local_pref;
  if (route.attrs->med) os << " med=" << *route.attrs->med;
  if (!route.attrs->communities.empty())
    os << " communities=" << route.attrs->communities.size();
  return os.str();
}

std::string LookingGlass::lpm(Ipv4Address addr) const {
  // The Loc-RIB is keyed by exact prefix: probe every mask length, most
  // specific first — 33 map lookups, no trie needed for a query path.
  for (int len = 32; len >= 0; --len) {
    Ipv4Prefix probe(addr, static_cast<std::uint8_t>(len));
    auto best = speaker_->loc_rib().best(probe);
    if (best) return "match " + render_route(*best) + "\n";
  }
  return "no route for " + addr.str() + "\n";
}

std::string LookingGlass::dump_adj_rib_in(bgp::PeerId peer) const {
  std::ostringstream os;
  os << "adj-rib-in " << speaker_->peer_config(peer).name << ":\n";
  std::size_t n = 0;
  speaker_->adj_rib_in(peer).visit([&](const bgp::RibRoute& route) {
    os << "  " << render_route(route) << "\n";
    ++n;
  });
  os << "  (" << n << " routes)\n";
  return os.str();
}

std::string LookingGlass::dump_adj_rib_out(bgp::PeerId peer) const {
  std::ostringstream os;
  os << "adj-rib-out " << speaker_->peer_config(peer).name << ":\n";
  auto entries = speaker_->adj_rib_out(peer);
  for (const auto& e : entries) {
    const std::string origin =
        e.origin == bgp::kLocalRoutes
            ? "local"
            : speaker_->peer_config(e.origin).name;
    os << "  " << e.prefix.str() << " id=" << e.local_id << " next_hop="
       << e.next_hop.str() << " from=" << origin << " as_path=["
       << e.attrs->as_path.str() << "]\n";
  }
  os << "  (" << entries.size() << " paths)\n";
  return os.str();
}

std::string LookingGlass::explain_best(const Ipv4Prefix& prefix) const {
  auto candidates = speaker_->loc_rib().candidates(prefix);
  std::ostringstream os;
  os << "best-path " << prefix.str() << ":\n";
  if (candidates.empty()) {
    os << "  no candidates\n";
    return os.str();
  }
  auto info_of = [&](bgp::PeerId p) { return speaker_->peer_decision_info(p); };
  for (std::size_t i = 0; i < candidates.size(); ++i)
    os << "  [" << i << "] " << render_route(candidates[i]) << "\n";

  // Replay the RFC 4271 §9.1 pairwise tournament select_best_path runs,
  // narrating the rule that decided each comparison.
  int best = -1;
  bgp::PeerDecisionInfo best_info;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const bgp::RibRoute& cand = candidates[static_cast<std::size_t>(i)];
    if (!cand.valid()) continue;
    bgp::PeerDecisionInfo cand_info = info_of(cand.peer);
    if (best < 0) {
      best = i;
      best_info = cand_info;
      continue;
    }
    const bgp::PathAttributes& b =
        *candidates[static_cast<std::size_t>(best)].attrs;
    const bgp::PathAttributes& c = *cand.attrs;
    const char* rule = nullptr;
    bool wins = false;
    std::uint32_t blp = b.local_pref.value_or(100);
    std::uint32_t clp = c.local_pref.value_or(100);
    std::size_t bal = b.as_path.decision_length();
    std::size_t cal = c.as_path.decision_length();
    if (clp != blp) {
      rule = "1:local_pref";
      wins = clp > blp;
    } else if (cal != bal) {
      rule = "2:as_path_length";
      wins = cal < bal;
    } else if (c.origin != b.origin) {
      rule = "3:origin";
      wins = c.origin < b.origin;
    } else if (c.as_path.first() == b.as_path.first() &&
               c.med.value_or(0) != b.med.value_or(0)) {
      rule = "4:med";
      wins = c.med.value_or(0) < b.med.value_or(0);
    } else if (cand_info.ibgp != best_info.ibgp) {
      rule = "5:ebgp_over_ibgp";
      wins = !cand_info.ibgp;
    } else if (cand_info.router_id != best_info.router_id) {
      rule = "6:router_id";
      wins = cand_info.router_id < best_info.router_id;
    } else {
      rule = "7:peer_address";
      wins = cand_info.peer_address < best_info.peer_address;
    }
    os << "  [" << i << "] vs [" << best << "]: rule " << rule << " -> "
       << (wins ? "replaces" : "keeps") << " best\n";
    if (wins) {
      best = i;
      best_info = cand_info;
    }
  }
  os << "  selected: [" << best << "]\n";
  return os.str();
}

std::string LookingGlass::query(const std::string& line) const {
  std::istringstream is(line);
  std::string verb, arg;
  is >> verb >> arg;
  const std::string usage =
      "usage: lpm <a.b.c.d> | adj-in <peer> | adj-out <peer> | "
      "explain <a.b.c.d/len> | tenant <id>\n";
  if (verb == "tenant") {
    if (arg.empty()) return usage;
    if (!tenant_resolver_)
      return "tenant queries unavailable: no tenant control plane attached\n";
    return tenant_resolver_(arg);
  }
  if (verb == "lpm") {
    auto addr = Ipv4Address::parse(arg);
    if (!addr) return "bad address: " + arg + "\n";
    return lpm(*addr);
  }
  if (verb == "adj-in" || verb == "adj-out") {
    bgp::PeerId peer = resolve_peer(arg);
    if (peer == 0) return "unknown peer: " + arg + "\n";
    return verb == "adj-in" ? dump_adj_rib_in(peer) : dump_adj_rib_out(peer);
  }
  if (verb == "explain") {
    auto prefix = Ipv4Prefix::parse(arg);
    if (!prefix) return "bad prefix: " + arg + "\n";
    return explain_best(*prefix);
  }
  return usage;
}

}  // namespace peering::mon
