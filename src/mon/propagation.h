// Propagation-latency tracing: stamp an origin SimTime on injected
// announcements and measure, per prefix, the time until each speaker
// installs it in its Loc-RIB and each router programs it into a neighbor
// FIB. The origin stamp lives in a side table keyed by prefix — it rides
// NEXT TO the interned attribute flow, never inside it, so the PR-1
// encode cache and the PR-6 splice path see byte-identical attribute sets
// with tracing on or off.
//
// Latencies are sim-time integers recorded into regular (non-timing)
// histograms, so every derived metric is deterministic across same-seed
// runs: per-speaker `mon_time_to_locrib_ns{speaker=...}`, per-router
// `mon_time_to_fib_ns{router=...}`, and all-hop aggregates under the
// label value "_all" — the convergence-time series the internet-scale
// soak gates on.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "netbase/prefix.h"
#include "netbase/time.h"
#include "obs/metrics.h"

namespace peering::mon {

class PropagationTracer {
 public:
  PropagationTracer();

  /// Stamps the origin time of `prefix` (when its announcement entered the
  /// system). Re-stamping moves the origin — announce/withdraw/re-announce
  /// waves measure each wave from its own injection.
  void stamp_origin(const Ipv4Prefix& prefix, SimTime at);

  /// Records time-to-Loc-RIB for `speaker` the FIRST time it installs a
  /// stamped prefix after the stamp (later best-path churn for the same
  /// prefix does not re-measure). Unstamped prefixes are ignored.
  void note_locrib(const std::string& speaker, const Ipv4Prefix& prefix,
                   SimTime at);

  /// Same, for a router programming the prefix into a neighbor FIB. Wire
  /// it into vbgp::VRouter::set_fib_observer.
  void note_fib(const std::string& router, const Ipv4Prefix& prefix,
                SimTime at);

  /// Deterministic per-hop histogram handles (created on first use) and
  /// the all-hop aggregates — benches extract percentiles from these.
  obs::Histogram* time_to_locrib(const std::string& speaker);
  obs::Histogram* time_to_fib(const std::string& router);
  obs::Histogram* locrib_aggregate() { return time_to_locrib(kAll); }
  obs::Histogram* fib_aggregate() { return time_to_fib(kAll); }

  std::size_t stamped_count() const { return origins_.size(); }
  std::uint64_t locrib_samples() const { return locrib_samples_; }
  std::uint64_t fib_samples() const { return fib_samples_; }

 private:
  static constexpr const char* kAll = "_all";

  obs::Registry* registry_;
  std::map<Ipv4Prefix, SimTime> origins_;
  /// First-arrival dedup: one measurement per (observer, prefix) per stamp.
  std::set<std::pair<std::string, Ipv4Prefix>> seen_locrib_;
  std::set<std::pair<std::string, Ipv4Prefix>> seen_fib_;
  std::map<std::string, obs::Histogram*> locrib_hist_;
  std::map<std::string, obs::Histogram*> fib_hist_;
  std::uint64_t locrib_samples_ = 0;
  std::uint64_t fib_samples_ = 0;
};

}  // namespace peering::mon
