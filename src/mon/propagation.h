// Propagation-latency tracing: stamp an origin SimTime on injected
// announcements and measure, per prefix, the time until each speaker
// installs it in its Loc-RIB and each router programs it into a neighbor
// FIB. The origin stamp lives in a side table keyed by prefix — it rides
// NEXT TO the interned attribute flow, never inside it, so the PR-1
// encode cache and the PR-6 splice path see byte-identical attribute sets
// with tracing on or off.
//
// Latencies are sim-time integers recorded into regular (non-timing)
// histograms, so every derived metric is deterministic across same-seed
// runs: per-speaker `mon_time_to_locrib_ns{speaker=...}`, per-router
// `mon_time_to_fib_ns{router=...}`, and all-hop aggregates under the
// label value "_all" — the convergence-time series the internet-scale
// soak gates on.
//
// Scale: the soak stamps ~1M prefixes observed by 13 PoPs, so first-arrival
// dedup is a per-prefix observer bitmask (observers are interned to bit
// indexes once per name) and re-stamping a prefix is O(1) — no linear
// sweeps, no per-(observer, prefix) node allocations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "netbase/prefix.h"
#include "netbase/time.h"
#include "obs/metrics.h"

namespace peering::mon {

class PropagationTracer {
 public:
  PropagationTracer();

  /// Stamps the origin time of `prefix` (when its announcement entered the
  /// system). Re-stamping moves the origin — announce/withdraw/re-announce
  /// waves measure each wave from its own injection.
  void stamp_origin(const Ipv4Prefix& prefix, SimTime at);

  /// Records time-to-Loc-RIB for `speaker` the FIRST time it installs a
  /// stamped prefix after the stamp (later best-path churn for the same
  /// prefix does not re-measure). Unstamped prefixes are ignored.
  void note_locrib(const std::string& speaker, const Ipv4Prefix& prefix,
                   SimTime at);

  /// Same, for a router programming the prefix into a neighbor FIB. Wire
  /// it into vbgp::VRouter::set_fib_observer.
  void note_fib(const std::string& router, const Ipv4Prefix& prefix,
                SimTime at);

  /// Deterministic per-hop histogram handles (created on first use) and
  /// the all-hop aggregates — benches extract percentiles from these.
  obs::Histogram* time_to_locrib(const std::string& speaker);
  obs::Histogram* time_to_fib(const std::string& router);
  // The aggregates never go through the observer intern: "_all" must not
  // consume one of the kMaxObservers dedup bits.
  obs::Histogram* locrib_aggregate();
  obs::Histogram* fib_aggregate();

  std::size_t stamped_count() const { return origins_.size(); }
  std::uint64_t locrib_samples() const { return locrib_samples_; }
  std::uint64_t fib_samples() const { return fib_samples_; }

 private:
  static constexpr const char* kAll = "_all";
  /// Distinct observer names per plane. Observer 64+ shares the last bit
  /// (dedup degrades, correctness doesn't); the 13-PoP footprint uses 26.
  static constexpr std::size_t kMaxObservers = 64;

  struct Observer {
    std::uint64_t bit = 0;
    obs::Histogram* hist = nullptr;
  };
  struct Origin {
    SimTime at;
    std::uint64_t locrib_seen = 0;  // observer bitmask, cleared on re-stamp
    std::uint64_t fib_seen = 0;
  };

  /// Interns `name` into `index` (bit + histogram handle, created once).
  Observer& observer(std::map<std::string, Observer>& index,
                     const std::string& name, const char* metric,
                     const char* label);

  obs::Registry* registry_;
  std::unordered_map<Ipv4Prefix, Origin> origins_;
  std::map<std::string, Observer> locrib_observers_;
  std::map<std::string, Observer> fib_observers_;
  obs::Histogram* locrib_all_ = nullptr;
  obs::Histogram* fib_all_ = nullptr;
  std::uint64_t locrib_samples_ = 0;
  std::uint64_t fib_samples_ = 0;
};

}  // namespace peering::mon
