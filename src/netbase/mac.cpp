#include "netbase/mac.h"

#include <cstdio>

namespace peering {

std::string MacAddress::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

Result<MacAddress> MacAddress::parse(const std::string& text) {
  std::array<std::uint8_t, 6> bytes{};
  std::size_t octet = 0;
  unsigned cur = 0;
  int digits = 0;
  auto hexval = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (char c : text) {
    if (c == ':') {
      if (digits == 0 || octet >= 5) return Error("mac: malformed: " + text);
      bytes[octet++] = static_cast<std::uint8_t>(cur);
      cur = 0;
      digits = 0;
    } else {
      int v = hexval(c);
      if (v < 0 || digits >= 2) return Error("mac: malformed: " + text);
      cur = (cur << 4) | static_cast<unsigned>(v);
      ++digits;
    }
  }
  if (digits == 0 || octet != 5) return Error("mac: malformed: " + text);
  bytes[5] = static_cast<std::uint8_t>(cur);
  return MacAddress(bytes);
}

}  // namespace peering
