#include "netbase/log.h"

#include <cstdio>

namespace peering {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

Logger::Sink Logger::set_sink(Sink sink) {
  Sink prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold_)) return;
  if (sink_) {
    sink_(level, "[" + component + "] " + message);
    return;
  }
  std::fprintf(stderr, "%-5s [%s] %s\n", log_level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace peering
