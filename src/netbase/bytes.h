// Bounds-checked big-endian (network byte order) serialization primitives.
// All wire formats in the library (Ethernet, ARP, IPv4, ICMP, BGP) are
// encoded and decoded through ByteWriter / ByteReader, so out-of-bounds
// access is structurally impossible: every read reports failure instead of
// touching memory outside the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "netbase/result.h"

namespace peering {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian encoded integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer and appends to it; take() hands it back.
  /// Lets encoders build directly into a caller's accumulation buffer.
  explicit ByteWriter(Bytes&& adopt) : buf_(std::move(adopt)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void raw(const Bytes& data) { raw(std::span<const std::uint8_t>(data)); }

  /// Writes a 16-bit big-endian length at a previously reserved position.
  /// Used for BGP message/attribute length fields that are only known after
  /// the body has been serialized.
  std::size_t reserve_u16() {
    std::size_t pos = buf_.size();
    u16(0);
    return pos;
  }
  void patch_u16(std::size_t pos, std::uint16_t v) {
    buf_[pos] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos + 1] = static_cast<std::uint8_t>(v);
  }
  std::size_t reserve_u8() {
    std::size_t pos = buf_.size();
    u8(0);
    return pos;
  }
  void patch_u8(std::size_t pos, std::uint8_t v) { buf_[pos] = v; }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequentially consumes big-endian integers and raw byte runs from a
/// read-only view. Every accessor reports failure (without advancing) when
/// fewer bytes remain than requested.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data)
      : data_(std::span<const std::uint8_t>(data)) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return Error("u8: buffer underrun");
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (remaining() < 2) return Error("u16: buffer underrun");
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (remaining() < 4) return Error("u32: buffer underrun");
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> u64() {
    auto hi = u32();
    if (!hi) return hi.error();
    auto lo = u32();
    if (!lo) return lo.error();
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }

  /// Returns a view of the next n bytes and advances past them.
  Result<std::span<const std::uint8_t>> raw(std::size_t n) {
    if (remaining() < n) return Error("raw: buffer underrun");
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Copies the next n bytes into an owned buffer.
  Result<Bytes> bytes(std::size_t n) {
    auto view = raw(n);
    if (!view) return view.error();
    return Bytes(view->begin(), view->end());
  }

  /// Skips n bytes.
  Status skip(std::size_t n) {
    if (remaining() < n) return Error("skip: buffer underrun");
    pos_ += n;
    return Status::Ok();
  }

  /// Returns a sub-reader over the next n bytes and advances past them.
  /// Used for length-delimited substructures (BGP path attributes).
  Result<ByteReader> sub(std::size_t n) {
    auto view = raw(n);
    if (!view) return view.error();
    return ByteReader(*view);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Renders bytes as lowercase hex, two digits per byte (debugging aid).
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace peering
