// Minimal expected-style result type used across the library for fallible
// operations (wire-format decoding, configuration transactions, policy
// evaluation). We avoid exceptions on hot paths: decode errors in BGP map to
// NOTIFICATION messages, not stack unwinding.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace peering {

/// Error payload carried by Result<T>. Holds a human-readable message and an
/// optional numeric code (used e.g. for BGP NOTIFICATION error subcodes).
struct Error {
  std::string message;
  int code = 0;

  Error() = default;
  explicit Error(std::string msg, int c = 0) : message(std::move(msg)), code(c) {}
};

/// Result<T>: either a value of type T or an Error. A deliberately small
/// subset of std::expected (not available in our toolchain's libstdc++).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  /// Access the value. Precondition: ok().
  T& value() {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Access the error. Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  /// Returns the value or a fallback if this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace peering
