// IPv4 prefixes (address + mask length) — the unit of BGP reachability and
// of the platform's address allocations.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "netbase/ip.h"
#include "netbase/result.h"

namespace peering {

/// An IPv4 prefix in canonical form: host bits below the mask are zeroed at
/// construction, so two prefixes compare equal iff they denote the same set
/// of addresses.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  constexpr Ipv4Prefix(Ipv4Address addr, std::uint8_t length)
      : addr_(Ipv4Address(mask_off(addr.value(), length))),
        length_(length > 32 ? 32 : length) {}

  constexpr Ipv4Address address() const { return addr_; }
  constexpr std::uint8_t length() const { return length_; }

  /// Network mask as a host-ordered 32-bit value (e.g. /24 -> 0xffffff00).
  constexpr std::uint32_t mask() const { return mask_bits(length_); }

  /// True iff `addr` falls inside this prefix.
  constexpr bool contains(Ipv4Address addr) const {
    return (addr.value() & mask()) == addr_.value();
  }

  /// True iff `other` is fully covered by this prefix (this is equal or
  /// less specific).
  constexpr bool covers(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// "a.b.c.d/len" rendering.
  std::string str() const;

  /// Parses "a.b.c.d/len"; the address is canonicalized (host bits zeroed).
  static Result<Ipv4Prefix> parse(const std::string& text);

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask_bits(std::uint8_t length) {
    return length == 0 ? 0u : (~0u << (32 - length));
  }
  static constexpr std::uint32_t mask_off(std::uint32_t v, std::uint8_t length) {
    return v & mask_bits(length > 32 ? 32 : length);
  }

  Ipv4Address addr_;
  std::uint8_t length_ = 0;
};

/// IPv6 prefix for the allocation registry only (not routed in the sim).
struct Ipv6Prefix {
  Ipv6Address address;
  std::uint8_t length = 0;

  std::string str() const { return address.str() + "/" + std::to_string(length); }
  auto operator<=>(const Ipv6Prefix&) const = default;
};

}  // namespace peering

template <>
struct std::hash<peering::Ipv4Prefix> {
  std::size_t operator()(const peering::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.address().value()) << 8) | p.length());
  }
};
