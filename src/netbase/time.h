// Simulated-time value types. All timers in the library (BGP hold/keepalive/
// MRAI, enforcement rate windows, link transmission delays) run on simulated
// nanoseconds so every experiment is deterministic and reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace peering {

/// A span of simulated time in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(std::int64_t v) { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) { return Duration(v * 1000); }
  static constexpr Duration millis(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }
  static constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }
  static constexpr Duration hours(std::int64_t v) { return seconds(v * 3600); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulation clock (nanoseconds since sim start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.ns()); }
  constexpr Duration operator-(SimTime o) const { return Duration(ns_ - o.ns_); }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

}  // namespace peering
