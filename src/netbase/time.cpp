#include "netbase/time.h"

#include <cstdio>

namespace peering {

std::string Duration::str() const {
  char buf[32];
  if (ns_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(ns_ / 1'000'000'000));
  } else if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ns_ / 1'000'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string SimTime::str() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

}  // namespace peering
