#include "netbase/prefix.h"

namespace peering {

std::string Ipv4Prefix::str() const {
  return addr_.str() + "/" + std::to_string(length_);
}

Result<Ipv4Prefix> Ipv4Prefix::parse(const std::string& text) {
  std::size_t slash = text.find('/');
  if (slash == std::string::npos)
    return Error("prefix: missing '/': " + text);
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return addr.error();
  const std::string len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2)
    return Error("prefix: bad length: " + text);
  unsigned len = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return Error("prefix: bad length: " + text);
    len = len * 10 + static_cast<unsigned>(c - '0');
  }
  if (len > 32) return Error("prefix: length > 32: " + text);
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(len));
}

}  // namespace peering
