// Ethernet MAC addresses. vBGP's data-plane delegation is built on MAC
// manipulation: each BGP neighbor is assigned a virtual MAC, and the
// destination MAC of a frame arriving from an experiment selects the
// per-neighbor routing table used to forward the inner packet.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "netbase/result.h"

namespace peering {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(const std::array<std::uint8_t, 6>& bytes)
      : bytes_(bytes) {}
  constexpr MacAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d, std::uint8_t e, std::uint8_t f)
      : bytes_{a, b, c, d, e, f} {}

  /// Broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() {
    return MacAddress(0xff, 0xff, 0xff, 0xff, 0xff, 0xff);
  }

  /// Deterministically derives a locally-administered unicast MAC from a
  /// 32-bit identifier (used by the virtual-neighbor registry so MAC
  /// assignment is reproducible across runs).
  static constexpr MacAddress from_id(std::uint32_t id) {
    // 0x02 in the first octet = locally administered, unicast.
    return MacAddress(0x02, 0x50, static_cast<std::uint8_t>(id >> 24),
                      static_cast<std::uint8_t>(id >> 16),
                      static_cast<std::uint8_t>(id >> 8),
                      static_cast<std::uint8_t>(id));
  }

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  constexpr bool is_broadcast() const {
    for (auto b : bytes_)
      if (b != 0xff) return false;
    return true;
  }
  constexpr bool is_zero() const {
    for (auto b : bytes_)
      if (b != 0) return false;
    return true;
  }

  /// Colon-separated lowercase hex, e.g. "02:50:00:00:00:01".
  std::string str() const;

  /// Parses colon-separated hex notation.
  static Result<MacAddress> parse(const std::string& text);

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace peering

template <>
struct std::hash<peering::MacAddress> {
  std::size_t operator()(const peering::MacAddress& m) const noexcept {
    std::uint64_t v = 0;
    for (auto b : m.bytes()) v = (v << 8) | b;
    return std::hash<std::uint64_t>{}(v);
  }
};
