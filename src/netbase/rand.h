// Deterministic pseudo-random number generation (splitmix64). Every workload
// generator takes an explicit seed so benchmark and test runs are exactly
// reproducible.
#pragma once

#include <cstdint>

namespace peering {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value (splitmix64).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) / 9007199254740992.0;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace peering
