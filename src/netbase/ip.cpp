#include "netbase/ip.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace peering {

std::string Ipv4Address::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xff,
                (addr_ >> 16) & 0xff, (addr_ >> 8) & 0xff, addr_ & 0xff);
  return buf;
}

Result<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  std::uint32_t parts[4];
  std::size_t part = 0;
  bool have_digit = false;
  std::uint32_t cur = 0;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return Error("ipv4: octet out of range: " + text);
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || part >= 3) return Error("ipv4: malformed: " + text);
      parts[part++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return Error("ipv4: invalid character: " + text);
    }
  }
  if (!have_digit || part != 3) return Error("ipv4: malformed: " + text);
  parts[3] = cur;
  return Ipv4Address((parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) |
                     parts[3]);
}

std::string Ipv6Address::str() const {
  std::ostringstream out;
  out << std::hex;
  for (int g = 0; g < 8; ++g) {
    if (g) out << ':';
    unsigned v = (static_cast<unsigned>(bytes_[g * 2]) << 8) | bytes_[g * 2 + 1];
    out << v;
  }
  return out.str();
}

Result<Ipv6Address> Ipv6Address::parse(const std::string& text) {
  // Split on "::" first (at most one occurrence).
  auto parse_groups = [](const std::string& s,
                         std::vector<std::uint16_t>& out) -> Status {
    if (s.empty()) return Status::Ok();
    std::size_t start = 0;
    while (start <= s.size()) {
      std::size_t end = s.find(':', start);
      if (end == std::string::npos) end = s.size();
      std::string group = s.substr(start, end - start);
      if (group.empty() || group.size() > 4)
        return Error("ipv6: malformed group: " + s);
      unsigned v = 0;
      for (char c : group) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
          v |= static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          v |= static_cast<unsigned>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          v |= static_cast<unsigned>(c - 'A' + 10);
        } else {
          return Error("ipv6: invalid character");
        }
      }
      out.push_back(static_cast<std::uint16_t>(v));
      if (end == s.size()) break;
      start = end + 1;
    }
    return Status::Ok();
  };

  std::vector<std::uint16_t> head, tail;
  std::size_t gap = text.find("::");
  if (gap != std::string::npos) {
    if (auto st = parse_groups(text.substr(0, gap), head); !st)
      return st.error();
    if (auto st = parse_groups(text.substr(gap + 2), tail); !st)
      return st.error();
    if (head.size() + tail.size() > 7) return Error("ipv6: too many groups");
  } else {
    if (auto st = parse_groups(text, head); !st) return st.error();
    if (head.size() != 8) return Error("ipv6: expected 8 groups");
  }

  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(head[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(head[i]);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    std::size_t g = 8 - tail.size() + i;
    bytes[g * 2] = static_cast<std::uint8_t>(tail[i] >> 8);
    bytes[g * 2 + 1] = static_cast<std::uint8_t>(tail[i]);
  }
  return Ipv6Address(bytes);
}

}  // namespace peering
