// IPv4 / IPv6 address value types. IPv4 is the routed protocol throughout the
// library (matching the paper's evaluation); IPv6 addresses exist for the
// platform's allocation registry (PEERING holds one /32 IPv6 allocation).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "netbase/result.h"

namespace peering {

/// An IPv4 address stored host-ordered for arithmetic; serialization through
/// ByteWriter/ByteReader converts to network order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return addr_; }
  constexpr bool is_zero() const { return addr_ == 0; }

  /// Dotted-quad rendering, e.g. "192.168.0.1".
  std::string str() const;

  /// Parses dotted-quad notation; rejects out-of-range octets and garbage.
  static Result<Ipv4Address> parse(const std::string& text);

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t addr_ = 0;
};

/// An IPv6 address as 16 raw bytes. Only used by the numbered-resource
/// registry; the simulated data plane is IPv4.
class Ipv6Address {
 public:
  Ipv6Address() { bytes_.fill(0); }
  explicit Ipv6Address(const std::array<std::uint8_t, 16>& bytes)
      : bytes_(bytes) {}

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// Canonical (RFC 5952-ish, without longest-run compression beyond the
  /// first) textual rendering.
  std::string str() const;

  /// Parses full or "::"-compressed hexadecimal notation.
  static Result<Ipv6Address> parse(const std::string& text);

  auto operator<=>(const Ipv6Address&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_;
};

}  // namespace peering

template <>
struct std::hash<peering::Ipv4Address> {
  std::size_t operator()(const peering::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
