#include "netbase/bytes.h"

namespace peering {

std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

}  // namespace peering
