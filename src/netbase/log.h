// Small leveled logger. Components log through a shared Logger whose sink and
// threshold are configurable; tests capture log lines to assert on
// attribution records (the paper requires logging for attribution, §3.3).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace peering {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger instance.
  static Logger& global();

  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Replaces the output sink (default: stderr). Returns the previous sink so
  /// tests can restore it.
  Sink set_sink(Sink sink);

  void log(LogLevel level, const std::string& component,
           const std::string& message);

 private:
  LogLevel threshold_ = LogLevel::kWarn;
  Sink sink_;
};

/// Convenience macros; evaluate the stream expression only when enabled.
#define PEERING_LOG(level, component, expr)                                   \
  do {                                                                        \
    if (static_cast<int>(level) >=                                            \
        static_cast<int>(::peering::Logger::global().threshold())) {          \
      std::ostringstream peering_log_stream_;                                 \
      peering_log_stream_ << expr;                                            \
      ::peering::Logger::global().log(level, component,                       \
                                      peering_log_stream_.str());             \
    }                                                                         \
  } while (0)

#define LOG_DEBUG(component, expr) \
  PEERING_LOG(::peering::LogLevel::kDebug, component, expr)
#define LOG_INFO(component, expr) \
  PEERING_LOG(::peering::LogLevel::kInfo, component, expr)
#define LOG_WARN(component, expr) \
  PEERING_LOG(::peering::LogLevel::kWarn, component, expr)
#define LOG_ERROR(component, expr) \
  PEERING_LOG(::peering::LogLevel::kError, component, expr)

}  // namespace peering
