// The centralized configuration database and management web service
// (§§4.6, 5): holds the desired-state model, versions every change, and
// implements the experiment lifecycle — proposal via the web form, manual
// review/approval (with capability grants), credential generation, and
// retirement. Configuration artifacts are derived from the model by the
// templating engine and recorded in a version-control-style history that
// supports inspection and rollback.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netbase/result.h"
#include "platform/model.h"

namespace peering::platform {

/// A proposal as submitted through the experiment web form (§4.6).
struct ExperimentProposal {
  std::string id;
  std::string description;
  std::string contact;
  std::string execution_plan;
  int requested_prefixes = 1;
  std::set<enforce::Capability> requested_capabilities;
  int requested_poisoned_asns = 0;
  int requested_communities = 0;
};

struct ChangeRecord {
  std::uint64_t version;
  std::string summary;
};

/// VPN/BGP credentials generated at approval (§4.6).
struct Credentials {
  std::string experiment_id;
  std::string vpn_username;
  std::string vpn_password_hash;
  bgp::Asn bgp_asn = 0;
};

class ConfigDatabase {
 public:
  explicit ConfigDatabase(PlatformModel initial);

  const PlatformModel& model() const { return model_; }
  std::uint64_t version() const { return model_.version; }
  const std::vector<ChangeRecord>& history() const { return history_; }

  // ------------------------ experiment lifecycle ------------------------

  /// Files a proposal (status kProposed). Fails on duplicate ids.
  Status propose_experiment(const ExperimentProposal& proposal);

  /// Approves a proposal: allocates prefixes and an origin ASN, grants the
  /// requested capabilities (the reviewer may trim them), generates
  /// credentials. Returns the credentials.
  Result<Credentials> approve_experiment(
      const std::string& id,
      std::optional<std::set<enforce::Capability>> granted_capabilities =
          std::nullopt);

  /// Rejects a proposal with a reason (e.g. "requires a large number of AS
  /// poisonings", §7.1).
  Status reject_experiment(const std::string& id, const std::string& reason);

  /// Marks an experiment active at a PoP (called when it connects).
  Status activate_experiment(const std::string& id, const std::string& pop_id);

  /// Retires an experiment and returns its prefixes to the pool.
  Status retire_experiment(const std::string& id);

  /// Admin override: assigns explicit prefixes to an approved experiment,
  /// even overlapping another experiment's allocation. Used for controlled
  /// hijack studies of PEERING's own address space (§7.1: "controlled
  /// hijacks (of Peering's own address space)").
  Status assign_prefixes(const std::string& id,
                         std::vector<Ipv4Prefix> prefixes);

  /// Amends a live experiment's capability grants (the "admins can simply
  /// add the capability on the approval web form" flow, §4.7). Takes
  /// effect on the platform via Peering::refresh_experiment.
  Status update_capabilities(const std::string& id,
                             std::set<enforce::Capability> capabilities,
                             int max_poisoned_asns, int max_communities);

  const ExperimentModel* experiment(const std::string& id) const;

  /// Prefixes not currently allocated to any live experiment.
  std::vector<Ipv4Prefix> free_prefixes() const;

 private:
  void record(const std::string& summary);

  PlatformModel model_;
  std::vector<ChangeRecord> history_;
  std::map<std::string, std::string> rejection_reasons_;
  std::map<std::string, int> pending_prefix_requests_;
  std::size_t next_asn_index_ = 1;  // resources.asns[0] is the platform ASN
};

}  // namespace peering::platform
