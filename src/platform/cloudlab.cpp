#include "platform/cloudlab.h"

namespace peering::platform {

Result<std::unique_ptr<CloudLabSite>> CloudLabSite::create(
    Peering& peering, const std::string& pop_id, const std::string& site_id,
    Duration site_latency) {
  if (!peering.pop(pop_id))
    return Error("cloudlab: no such pop: " + pop_id);
  auto site = std::unique_ptr<CloudLabSite>(new CloudLabSite());
  site->peering_ = &peering;
  site->site_id_ = site_id;
  site->pop_id_ = pop_id;
  site->site_latency_ = site_latency;
  return site;
}

CloudLabNode& CloudLabSite::allocate_node(const std::string& node_id) {
  auto node = std::make_unique<CloudLabNode>();
  node->id = node_id;
  node->host = std::make_unique<ip::Host>(peering_->loop(),
                                          site_id_ + "/" + node_id);
  node->address = Ipv4Address(10, 240, next_node_, 2);
  ++next_node_;
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

Result<ExperimentAttachment> CloudLabSite::attach_experiment(
    const std::string& exp_id, CloudLabNode& node) {
  auto attachment =
      peering_->attach_experiment(exp_id, pop_id_, site_latency_);
  if (!attachment) return attachment;

  // Wire the node's NIC straight onto the attachment link: no VPN client,
  // the site LAN is the transport. The allocation address comes first
  // (primary) so experiment traffic is sourced from announced space.
  const auto* exp = peering_->db().experiment(exp_id);
  auto& nif = node.host->add_interface(
      "site0", MacAddress::from_id(0xCF000000u |
                                   static_cast<std::uint32_t>(nodes_.size())));
  if (exp && !exp->allocated_prefixes.empty()) {
    const Ipv4Prefix& alloc = exp->allocated_prefixes.front();
    nif.add_address({Ipv4Address(alloc.address().value() + 1), alloc.length()});
  }
  nif.add_address({attachment->client_tunnel_address, 24});
  nif.attach(*attachment->tunnel, /*side_a=*/false);
  int if_index = node.host->interface_count() - 1;
  for (const auto& addr : nif.addresses())
    node.host->routes().insert(
        ip::Route{addr.subnet(), Ipv4Address(), if_index, 0});
  return attachment;
}

}  // namespace peering::platform
