#include "platform/controller.h"

#include <algorithm>
#include <set>

#include "netbase/log.h"

namespace peering::platform {

namespace {

bool addresses_equal_in_order(const std::vector<NlAddress>& a,
                              const std::vector<NlAddress>& b) {
  return a == b;
}

}  // namespace

NetworkController::NetworkController(NetlinkSim* netlink)
    : netlink_(netlink), metrics_(obs::Registry::global()) {
  obs_rollbacks_ = metrics_->counter("controller_rollbacks_total");
  obs_rollback_failures_ =
      metrics_->counter("controller_rollback_failures_total");
}

bool NetworkController::in_sync(const DesiredNetworkState& desired) const {
  // Interfaces: same set, same up state, same ordered addresses.
  auto live = netlink_->interfaces();
  if (live.size() != desired.interfaces.size()) return false;
  for (const auto& want : desired.interfaces) {
    auto have = netlink_->interface(want.name);
    if (!have || have->up != want.up ||
        !addresses_equal_in_order(have->addresses, want.addresses))
      return false;
  }
  auto live_routes = netlink_->routes();
  std::set<NlRoute> live_route_set(live_routes.begin(), live_routes.end());
  std::set<NlRoute> want_routes(desired.routes.begin(), desired.routes.end());
  if (live_route_set != want_routes) return false;
  auto live_rules = netlink_->rules();
  std::set<NlRule> live_rule_set(live_rules.begin(), live_rules.end());
  std::set<NlRule> want_rules(desired.rules.begin(), desired.rules.end());
  return live_rule_set == want_rules;
}

std::vector<NetworkController::Op> NetworkController::plan(
    const DesiredNetworkState& desired) const {
  std::vector<Op> ops;
  NetlinkSim* nl = netlink_;

  std::map<std::string, NlInterface> want_ifs;
  for (const auto& nif : desired.interfaces) want_ifs[nif.name] = nif;

  // --- Step 1: remove configuration incompatible with the intent. ---

  // Routes first (they depend on interfaces).
  std::set<NlRoute> want_routes(desired.routes.begin(), desired.routes.end());
  for (const NlRoute& route : netlink_->routes()) {
    bool keep = want_routes.count(route) > 0 &&
                want_ifs.count(route.interface) > 0;
    if (keep) continue;
    ops.push_back({[nl, route]() { return nl->remove_route(route); },
                   [nl, route]() { return nl->add_route(route); },
                   "remove route " + route.prefix.str()});
  }

  std::set<NlRule> want_rules(desired.rules.begin(), desired.rules.end());
  for (const NlRule& rule : netlink_->rules()) {
    if (want_rules.count(rule)) continue;
    ops.push_back({[nl, rule]() { return nl->remove_rule(rule); },
                   [nl, rule]() { return nl->add_rule(rule); },
                   "remove rule " + rule.selector});
  }

  // Interfaces not wanted at all.
  for (const NlInterface& live : netlink_->interfaces()) {
    if (want_ifs.count(live.name)) continue;
    NlInterface snapshot = live;
    ops.push_back({[nl, snapshot]() { return nl->delete_interface(snapshot.name); },
                   [nl, snapshot]() {
                     if (auto st = nl->create_interface(snapshot.name); !st)
                       return st;
                     if (auto st = nl->set_link_up(snapshot.name, snapshot.up);
                         !st)
                       return st;
                     for (const auto& addr : snapshot.addresses)
                       if (auto st = nl->add_address(snapshot.name, addr); !st)
                         return st;
                     return Status::Ok();
                   },
                   "delete interface " + snapshot.name});
  }

  // --- Step 2: reconcile wanted interfaces. ---
  for (const auto& [name, want] : want_ifs) {
    auto have = netlink_->interface(name);
    if (!have) {
      NlInterface target = want;
      ops.push_back({[nl, target]() {
                       if (auto st = nl->create_interface(target.name); !st)
                         return st;
                       Status st = nl->set_link_up(target.name, target.up);
                       if (st) {
                         for (const auto& addr : target.addresses) {
                           st = nl->add_address(target.name, addr);
                           if (!st) break;
                         }
                       }
                       if (!st) {
                         // Ops must be atomic: apply() only unwinds ops that
                         // completed, so a half-configured interface would
                         // leak out of the transaction. Deleting it also
                         // flushes any addresses already added.
                         (void)nl->delete_interface(target.name);
                         return st;
                       }
                       return Status::Ok();
                     },
                     [nl, target]() { return nl->delete_interface(target.name); },
                     "create interface " + target.name});
      continue;
    }

    if (have->up != want.up) {
      bool up = want.up;
      std::string ifname = name;
      ops.push_back({[nl, ifname, up]() { return nl->set_link_up(ifname, up); },
                     [nl, ifname, up]() { return nl->set_link_up(ifname, !up); },
                     (up ? "up " : "down ") + ifname});
    }

    if (!addresses_equal_in_order(have->addresses, want.addresses)) {
      bool primary_wrong =
          !want.addresses.empty() &&
          (have->addresses.empty() ||
           have->addresses.front() != want.addresses.front());
      if (primary_wrong) {
        // Linux cannot re-prioritize addresses in place: remove everything
        // and re-add in the intended order (§5).
        NlInterface before = *have;
        NlInterface target = want;
        ops.push_back(
            {[nl, before, target]() {
               for (const auto& addr : before.addresses)
                 if (auto st = nl->remove_address(before.name, addr.address);
                     !st)
                   return st;
               for (const auto& addr : target.addresses)
                 if (auto st = nl->add_address(target.name, addr); !st)
                   return st;
               return Status::Ok();
             },
             [nl, before, target]() {
               for (const auto& addr : target.addresses)
                 if (auto st = nl->remove_address(target.name, addr.address);
                     !st)
                   return st;
               for (const auto& addr : before.addresses)
                 if (auto st = nl->add_address(before.name, addr); !st)
                   return st;
               return Status::Ok();
             },
             "reorder addresses on " + name});
      } else {
        // Primary is right: add/remove the deltas only.
        std::set<std::pair<std::uint32_t, std::uint8_t>> want_set, have_set;
        for (const auto& a : want.addresses)
          want_set.insert({a.address.value(), a.prefix_length});
        for (const auto& a : have->addresses)
          have_set.insert({a.address.value(), a.prefix_length});
        std::string ifname = name;
        for (const auto& a : have->addresses) {
          if (want_set.count({a.address.value(), a.prefix_length})) continue;
          NlAddress addr = a;
          ops.push_back(
              {[nl, ifname, addr]() {
                 return nl->remove_address(ifname, addr.address);
               },
               [nl, ifname, addr]() { return nl->add_address(ifname, addr); },
               "remove addr " + addr.address.str()});
        }
        for (const auto& a : want.addresses) {
          if (have_set.count({a.address.value(), a.prefix_length})) continue;
          NlAddress addr = a;
          ops.push_back(
              {[nl, ifname, addr]() { return nl->add_address(ifname, addr); },
               [nl, ifname, addr]() {
                 return nl->remove_address(ifname, addr.address);
               },
               "add addr " + addr.address.str()});
        }
      }
    }
  }

  // --- Step 3: add missing rules and routes. ---
  std::set<NlRule> live_rules;
  for (const auto& r : netlink_->rules()) live_rules.insert(r);
  for (const NlRule& rule : desired.rules) {
    if (live_rules.count(rule)) continue;
    ops.push_back({[nl, rule]() { return nl->add_rule(rule); },
                   [nl, rule]() { return nl->remove_rule(rule); },
                   "add rule " + rule.selector});
  }

  std::set<NlRoute> live_routes;
  for (const auto& r : netlink_->routes()) live_routes.insert(r);
  for (const NlRoute& route : desired.routes) {
    if (live_routes.count(route)) continue;
    ops.push_back({[nl, route]() { return nl->add_route(route); },
                   [nl, route]() { return nl->remove_route(route); },
                   "add route " + route.prefix.str()});
  }

  return ops;
}

ApplyResult NetworkController::apply(const DesiredNetworkState& desired) {
  ApplyResult result;
  std::vector<Op> ops = plan(desired);

  std::vector<const Op*> applied;
  for (const Op& op : ops) {
    Status st = op.run();
    if (!st) {
      // Transactional semantics: unwind everything applied so far, in
      // reverse order.
      result.error = op.description + ": " + st.error().message;
      obs_rollbacks_->inc();
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        Status undo = (*it)->undo();
        if (!undo) {
          // The server may now be inconsistent: surface it as telemetry, not
          // just a log line, so fleet-level rollback can see it.
          ++result.rollback_failures;
          obs_rollback_failures_->inc();
          metrics_->trace().emit(SimTime{}, "controller", "rollback-failure",
                                 {{"op", (*it)->description},
                                  {"error", undo.error().message}});
          LOG_ERROR("controller",
                    "rollback failed for '" << (*it)->description
                                            << "': " << undo.error().message);
        }
      }
      result.rolled_back = true;
      result.success = false;
      return result;
    }
    applied.push_back(&op);
    ++result.changes_applied;
  }
  result.success = true;
  return result;
}

}  // namespace peering::platform
