#include "platform/footprint.h"

#include <algorithm>
#include <set>

namespace peering::platform {

const std::vector<FootprintPopSpec>& footprint_pops() {
  // Thirteen PoPs (§4.2): four IXPs + nine universities. Peer counts follow
  // the paper: "We peer with 854 ASes at AMS-IX (106 bilaterally), 306 (63)
  // at Seattle-IX, 140 (10) at Phoenix-IX, and 129 (6) at IX.br/MG."
  static const std::vector<FootprintPopSpec> pops = {
      {"amsterdam01", "AMS-IX, Amsterdam", PopType::kIxp, 106, 748, 2, true, 0},
      {"seattle01", "Seattle-IX, Seattle", PopType::kIxp, 63, 243, 1, true, 0},
      {"phoenix01", "Phoenix-IX, Phoenix", PopType::kIxp, 10, 130, 0, false, 0},
      {"ixbr-mg01", "IX.br/MG, Belo Horizonte", PopType::kIxp, 6, 123, 0, true, 0},
      {"gatech01", "Georgia Tech, Atlanta", PopType::kUniversity, 0, 0, 1, true, 0},
      {"clemson01", "Clemson University", PopType::kUniversity, 0, 0, 1, true, 0},
      {"wisc01", "UW-Madison", PopType::kUniversity, 0, 0, 1, true, 0},
      {"utah01", "University of Utah", PopType::kUniversity, 0, 0, 1, true, 0},
      {"ufmg01", "UFMG, Belo Horizonte", PopType::kUniversity, 0, 0, 1, true,
       100'000'000},
      {"isi01", "USC/ISI, Los Angeles", PopType::kUniversity, 0, 0, 1, false, 0},
      {"cornell01", "Cornell University", PopType::kUniversity, 0, 0, 1, false,
       50'000'000},
      {"neu01", "Northeastern University", PopType::kUniversity, 0, 0, 1, false, 0},
      {"columbia01", "Columbia University", PopType::kUniversity, 0, 0, 1, true, 0},
  };
  return pops;
}

PlatformModel build_footprint(std::uint64_t seed) {
  (void)seed;  // the footprint is fully deterministic
  PlatformModel model;
  model.resources = NumberedResources::peering_defaults();

  // 923 unique peer ASes across the four IXPs (§4.2). Identity is by
  // index into a shared pool so per-IXP memberships overlap realistically.
  constexpr bgp::Asn kPeerAsnBase = 20000;
  auto peer_asn = [](int index) {
    return kPeerAsnBase + static_cast<bgp::Asn>(index);
  };

  // Per-IXP membership as index ranges into the pool, arranged so that the
  // union is exactly 923 unique peers of which exactly 129 are bilateral
  // somewhere, while each IXP shows the §4.2 per-site counts:
  //   AMS-IX:  854 members (106 bilateral)
  //   Seattle: 306 members (63 bilateral: 40 shared with AMS + 23 new)
  //   Phoenix: 140 members (10 bilateral, all shared with AMS)
  //   IX.br:   129 members (6 bilateral, all shared with AMS)
  struct IxpRange {
    int begin;
    int end;  // exclusive
    bool bilateral;
  };
  struct IxpPlan {
    const char* pop;
    std::vector<IxpRange> ranges;
  };
  const std::vector<IxpPlan> plans = {
      {"amsterdam01", {{0, 106, true}, {106, 854, false}}},
      {"seattle01",
       {{66, 106, true}, {854, 877, true}, {877, 923, false}, {300, 497, false}}},
      {"phoenix01", {{0, 10, true}, {10, 140, false}}},
      {"ixbr-mg01", {{100, 106, true}, {106, 229, false}}},
  };

  std::uint32_t next_global_id = 1;
  bgp::Asn next_transit_asn = 3000;

  for (const auto& spec : footprint_pops()) {
    PopModel pop;
    pop.id = spec.id;
    pop.location = spec.location;
    pop.type = spec.type;
    pop.on_backbone = spec.on_backbone;
    pop.bandwidth_limit_bps = spec.bandwidth_limit_bps;

    for (int t = 0; t < spec.transits; ++t) {
      InterconnectModel ic;
      ic.name = std::string(spec.id) + "-transit" + std::to_string(t);
      ic.asn = next_transit_asn++;
      ic.type = InterconnectType::kTransit;
      ic.global_id = next_global_id++;
      pop.interconnects.push_back(ic);
    }

    for (const auto& plan : plans) {
      if (pop.id != plan.pop) continue;
      for (const auto& range : plan.ranges) {
        for (int i = range.begin; i < range.end; ++i) {
          InterconnectModel ic;
          ic.asn = peer_asn(i);
          ic.name = "peer-as" + std::to_string(ic.asn);
          ic.type = range.bilateral ? InterconnectType::kBilateralPeer
                                    : InterconnectType::kRouteServer;
          ic.global_id = next_global_id++;
          pop.interconnects.push_back(ic);
        }
      }
    }
    model.pops[pop.id] = std::move(pop);
  }
  model.version = 1;
  return model;
}

FootprintSummary summarize(const PlatformModel& model) {
  FootprintSummary summary;
  std::set<bgp::Asn> unique_peers;
  std::set<bgp::Asn> bilateral;
  for (const auto& [id, pop] : model.pops) {
    ++summary.pop_count;
    if (pop.type == PopType::kIxp)
      ++summary.ixp_pops;
    else
      ++summary.university_pops;
    for (const auto& ic : pop.interconnects) {
      switch (ic.type) {
        case InterconnectType::kTransit:
          ++summary.transit_interconnects;
          break;
        case InterconnectType::kBilateralPeer:
          unique_peers.insert(ic.asn);
          bilateral.insert(ic.asn);
          break;
        case InterconnectType::kRouteServer:
          unique_peers.insert(ic.asn);
          break;
      }
    }
  }
  summary.unique_peers = unique_peers.size();
  summary.bilateral_peers = bilateral.size();
  summary.route_server_peers = unique_peers.size() - bilateral.size();
  return summary;
}

}  // namespace peering::platform
