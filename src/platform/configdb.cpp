#include "platform/configdb.h"

#include <algorithm>

namespace peering::platform {

ConfigDatabase::ConfigDatabase(PlatformModel initial)
    : model_(std::move(initial)) {
  if (model_.version == 0) model_.version = 1;
}

void ConfigDatabase::record(const std::string& summary) {
  ++model_.version;
  history_.push_back({model_.version, summary});
}

Status ConfigDatabase::propose_experiment(const ExperimentProposal& proposal) {
  if (proposal.id.empty()) return Error("configdb: empty experiment id");
  if (auto it = model_.experiments.find(proposal.id);
      it != model_.experiments.end()) {
    // Retired and rejected records stay in the database for history, but
    // they hold no resources (free_prefixes skips them), so the id may be
    // proposed again: a rejected proposal can be revised and resubmitted,
    // and a removed experiment can come back.
    if (it->second.status != ExperimentStatus::kRetired &&
        it->second.status != ExperimentStatus::kRejected)
      return Error("configdb: experiment exists: " + proposal.id);
    model_.experiments.erase(it);
    rejection_reasons_.erase(proposal.id);
  }
  if (proposal.requested_prefixes < 1)
    return Error("configdb: must request at least one prefix");

  ExperimentModel exp;
  exp.id = proposal.id;
  exp.description = proposal.description;
  exp.contact = proposal.contact;
  exp.status = ExperimentStatus::kProposed;
  exp.capabilities = proposal.requested_capabilities;  // pending review
  exp.max_poisoned_asns = proposal.requested_poisoned_asns;
  exp.max_communities = proposal.requested_communities;
  // Stash the prefix request in a side channel: allocation happens at
  // approval so rejected proposals never consume address space.
  pending_prefix_requests_[proposal.id] = proposal.requested_prefixes;
  model_.experiments[exp.id] = std::move(exp);
  record("propose " + proposal.id);
  return Status::Ok();
}

std::vector<Ipv4Prefix> ConfigDatabase::free_prefixes() const {
  std::vector<Ipv4Prefix> free = model_.resources.prefix_pool;
  for (const auto& [id, exp] : model_.experiments) {
    if (exp.status == ExperimentStatus::kRejected ||
        exp.status == ExperimentStatus::kRetired)
      continue;
    for (const auto& allocated : exp.allocated_prefixes) {
      free.erase(std::remove(free.begin(), free.end(), allocated), free.end());
    }
  }
  return free;
}

Result<Credentials> ConfigDatabase::approve_experiment(
    const std::string& id,
    std::optional<std::set<enforce::Capability>> granted_capabilities) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  ExperimentModel& exp = it->second;
  if (exp.status != ExperimentStatus::kProposed)
    return Error("configdb: experiment not in proposed state: " + id);

  int want = 1;
  auto req = pending_prefix_requests_.find(id);
  if (req != pending_prefix_requests_.end()) want = req->second;
  auto free = free_prefixes();
  if (static_cast<int>(free.size()) < want)
    return Error("configdb: insufficient free IPv4 prefixes (" +
                 std::to_string(free.size()) + " free, " +
                 std::to_string(want) + " requested)");
  exp.allocated_prefixes.assign(free.begin(), free.begin() + want);
  exp.allocated_v6 = model_.resources.v6_allocation;  // v6 is plentiful

  if (granted_capabilities) exp.capabilities = *granted_capabilities;
  if (next_asn_index_ >= model_.resources.asns.size())
    next_asn_index_ = 1;  // ASNs are shared across experiments if exhausted
  exp.asn = model_.resources.asns[next_asn_index_++];
  exp.status = ExperimentStatus::kApproved;

  Credentials creds;
  creds.experiment_id = id;
  creds.vpn_username = id;
  // A deterministic stand-in for a generated secret.
  creds.vpn_password_hash =
      "sha256:" + std::to_string(std::hash<std::string>{}(id + "-secret"));
  creds.bgp_asn = exp.asn;
  record("approve " + id);
  return creds;
}

Status ConfigDatabase::reject_experiment(const std::string& id,
                                         const std::string& reason) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  if (it->second.status != ExperimentStatus::kProposed)
    return Error("configdb: experiment not in proposed state: " + id);
  it->second.status = ExperimentStatus::kRejected;
  rejection_reasons_[id] = reason;
  record("reject " + id + ": " + reason);
  return Status::Ok();
}

Status ConfigDatabase::activate_experiment(const std::string& id,
                                           const std::string& pop_id) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  ExperimentModel& exp = it->second;
  if (exp.status != ExperimentStatus::kApproved &&
      exp.status != ExperimentStatus::kActive)
    return Error("configdb: experiment not approved: " + id);
  if (!model_.pops.count(pop_id))
    return Error("configdb: no such pop: " + pop_id);
  if (std::find(exp.pops.begin(), exp.pops.end(), pop_id) == exp.pops.end())
    exp.pops.push_back(pop_id);
  exp.status = ExperimentStatus::kActive;
  record("activate " + id + " at " + pop_id);
  return Status::Ok();
}

Status ConfigDatabase::assign_prefixes(const std::string& id,
                                       std::vector<Ipv4Prefix> prefixes) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  ExperimentModel& exp = it->second;
  if (exp.status != ExperimentStatus::kApproved &&
      exp.status != ExperimentStatus::kActive)
    return Error("configdb: experiment not live: " + id);
  // Only the platform's own space may be assigned — controlled hijacks
  // never touch third-party prefixes.
  for (const auto& prefix : prefixes) {
    bool owned = false;
    for (const auto& pool : model_.resources.prefix_pool)
      if (pool.covers(prefix) || prefix.covers(pool)) owned = true;
    if (!owned)
      return Error("configdb: " + prefix.str() +
                   " is not PEERING address space");
  }
  exp.allocated_prefixes = std::move(prefixes);
  record("assign-prefixes " + id);
  return Status::Ok();
}

Status ConfigDatabase::update_capabilities(
    const std::string& id, std::set<enforce::Capability> capabilities,
    int max_poisoned_asns, int max_communities) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  ExperimentModel& exp = it->second;
  if (exp.status != ExperimentStatus::kApproved &&
      exp.status != ExperimentStatus::kActive)
    return Error("configdb: experiment not live: " + id);
  exp.capabilities = std::move(capabilities);
  exp.max_poisoned_asns = max_poisoned_asns;
  exp.max_communities = max_communities;
  record("update-capabilities " + id);
  return Status::Ok();
}

Status ConfigDatabase::retire_experiment(const std::string& id) {
  auto it = model_.experiments.find(id);
  if (it == model_.experiments.end())
    return Error("configdb: no such experiment: " + id);
  it->second.status = ExperimentStatus::kRetired;
  it->second.pops.clear();
  record("retire " + id);
  return Status::Ok();
}

const ExperimentModel* ConfigDatabase::experiment(const std::string& id) const {
  auto it = model_.experiments.find(id);
  return it == model_.experiments.end() ? nullptr : &it->second;
}

}  // namespace peering::platform
