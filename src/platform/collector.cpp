#include "platform/collector.h"

namespace peering::platform {

RouteCollector::RouteCollector(sim::EventLoop* loop, std::string name,
                               bgp::Asn asn, Ipv4Address router_id,
                               std::size_t archive_capacity)
    : loop_(loop),
      speaker_(std::make_unique<bgp::BgpSpeaker>(loop, name, asn, router_id)),
      archive_capacity_(archive_capacity),
      metrics_(obs::Registry::global()),
      obs_dropped_(metrics_->counter("collector_records_dropped_total",
                                     {{"collector", name}})) {
  speaker_->on_route_event([this](const bgp::RibRoute& route, bool withdrawn) {
    if (archive_.size() >= archive_capacity_) {
      // Drop-newest: RIB state stays authoritative, only the historical
      // dump truncates — and loudly, so an experiment can tell.
      ++records_dropped_;
      obs_dropped_->inc();
      metrics_->trace().emit(loop_->now(), "platform", "collector_drop",
                             {{"collector", speaker_->name()},
                              {"prefix", route.prefix.str()}});
      return;
    }
    ArchiveRecord record;
    record.at = loop_->now();
    auto it = feed_names_.find(route.peer);
    record.feed = it == feed_names_.end() ? "?" : it->second;
    record.prefix = route.prefix;
    record.withdrawn = withdrawn;
    record.as_path = route.attrs->as_path;
    record.communities = route.attrs->communities;
    archive_.push_back(std::move(record));
  });
}

bgp::PeerId RouteCollector::add_feed(const std::string& feed_name,
                                     bgp::Asn feed_asn) {
  bgp::PeerConfig config;
  config.name = feed_name;
  config.peer_asn = feed_asn;
  config.export_policy = bgp::RoutePolicy::deny_all();  // strictly passive
  bgp::PeerId peer = speaker_->add_peer(config);
  feed_names_[peer] = feed_name;
  return peer;
}

std::vector<bgp::AsPath> RouteCollector::visible_paths(
    const Ipv4Prefix& prefix) const {
  std::vector<bgp::AsPath> out;
  for (const auto& route : speaker_->loc_rib().candidates(prefix))
    out.push_back(route.attrs->as_path);
  return out;
}

std::vector<ArchiveRecord> RouteCollector::history(
    const Ipv4Prefix& prefix) const {
  std::vector<ArchiveRecord> out;
  for (const auto& record : archive_)
    if (record.prefix == prefix) out.push_back(record);
  return out;
}

}  // namespace peering::platform
