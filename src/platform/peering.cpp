#include "platform/peering.h"

#include <algorithm>

#include "netbase/log.h"
#include "sim/stream.h"
#include "vbgp/communities.h"

namespace peering::platform {

Peering::Peering(sim::EventLoop* loop, ConfigDatabase* db,
                 PeeringOptions options)
    : loop_(loop), db_(db), options_(options), fabric_(loop) {}

void Peering::build() {
  std::uint8_t index = 1;
  for (const auto& [id, model] : db_->model().pops) {
    build_pop(model, index++);
  }
  if (options_.build_backbone) build_backbone();
}

void Peering::build_pop(const PopModel& model, std::uint8_t pop_index) {
  auto pop = std::make_unique<PopRuntime>();
  pop->model = model;

  vbgp::VRouterConfig config;
  config.name = model.id;
  config.pop_id = model.id;
  config.asn = db_->model().resources.asns.front();
  config.router_id = Ipv4Address(10, 255, pop_index, 1);
  config.router_seed = pop_index;
  pop->router = std::make_unique<vbgp::VRouter>(loop_, config);

  pop->control = std::make_unique<enforce::ControlPlaneEnforcer>();
  pop->control->install_default_rules(
      {vbgp::kWhitelistAsn, vbgp::kBlacklistAsn});
  pop->data = std::make_unique<enforce::DataPlaneEnforcer>();
  pop->router->set_control_enforcer(pop->control.get());
  pop->router->set_data_enforcer(pop->data.get());

  // Materialize the first K interconnects as live neighbor routers.
  std::size_t live = 0;
  std::uint8_t subnet = 1;
  for (const auto& ic : model.interconnects) {
    if (live >= options_.max_live_neighbors_per_pop) break;
    auto nb = std::make_unique<NeighborRuntime>();
    nb->model = ic;
    nb->router_address = Ipv4Address(10, pop_index, subnet, 1);
    nb->neighbor_address = Ipv4Address(10, pop_index, subnet, 2);
    ++subnet;

    sim::LinkConfig link_config;
    link_config.latency = Duration::micros(200);
    link_config.name = model.id + "<->" + ic.name;
    nb->link = std::make_unique<sim::Link>(loop_, link_config);

    nb->router_interface = pop->router->add_attached_interface(
        ic.name, MacAddress::from_id((pop_index << 16) | (live + 1)),
        {nb->router_address, 24}, *nb->link, /*side_a=*/true,
        /*promiscuous=*/true);

    nb->host = std::make_unique<ip::Host>(loop_, ic.name);
    nb->host->add_attached_interface(
        "up", MacAddress::from_id(0xCC000000u | (pop_index << 16) | (live + 1)),
        {nb->neighbor_address, 24}, *nb->link, /*side_a=*/false);
    // Default route back into the platform (for replies to experiments).
    nb->host->routes().insert(ip::Route{Ipv4Prefix(Ipv4Address(), 0),
                                        nb->router_address, 0, 0});

    nb->speaker = std::make_unique<bgp::BgpSpeaker>(
        loop_, ic.name, ic.asn, nb->neighbor_address);

    nb->peer_at_router = pop->router->add_neighbor(
        {.name = ic.name, .asn = ic.asn,
         .local_address = nb->router_address,
         .remote_address = nb->neighbor_address,
         .interface = nb->router_interface,
         .global_id = ic.global_id});
    nb->peer_at_neighbor = nb->speaker->add_peer(
        {.name = model.id, .peer_asn = config.asn,
         .local_address = nb->neighbor_address,
         .peer_address = nb->router_address});

    auto streams = sim::StreamChannel::make(loop_, link_config.latency);
    pop->router->speaker().connect_peer(nb->peer_at_router, streams.a);
    nb->speaker->connect_peer(nb->peer_at_neighbor, streams.b);

    pop->neighbors.push_back(std::move(nb));
    ++live;
  }

  if (options_.build_ixp_fabric && model.type == PopType::kIxp)
    build_ixp_fabric(*pop, pop_index);

  pop_indexes_[model.id] = pop_index;
  pops_[model.id] = std::move(pop);
}

void Peering::build_ixp_fabric(PopRuntime& pop, std::uint8_t pop_index) {
  auto ixp = std::make_unique<IxpFabricRuntime>();
  ixp->fabric = std::make_unique<ether::Switch>(pop.model.id + "-fabric");
  const Ipv4Prefix fabric_subnet(Ipv4Address(10, pop_index, 250, 0), 24);

  auto attach_port = [&](MacAddress mac) -> sim::Link& {
    sim::LinkConfig config;
    config.latency = Duration::micros(50);
    ixp->fabric_links.push_back(std::make_unique<sim::Link>(loop_, config));
    ixp->fabric->attach(*ixp->fabric_links.back(), /*side_a=*/false);
    (void)mac;
    return *ixp->fabric_links.back();
  };

  // The vBGP router's fabric port.
  ixp->router_fabric_address = Ipv4Address(10, pop_index, 250, 1);
  sim::Link& router_link =
      attach_port(MacAddress::from_id(0x30000000u | (pop_index << 8)));
  ixp->router_interface = pop.router->add_attached_interface(
      "ixp", MacAddress::from_id(0x30000000u | (pop_index << 8) | 1),
      {ixp->router_fabric_address, 24}, router_link, /*side_a=*/true,
      /*promiscuous=*/true);

  // The route server: control plane only. It has no data-plane host — its
  // speaker exchanges routes over streams, and no packet is ever addressed
  // to it (RFC 7947: the RS stays off the data path).
  ixp->rs_asn = 64600u + pop_index;
  ixp->rs_address = Ipv4Address(10, pop_index, 250, 2);
  ixp->route_server = std::make_unique<bgp::BgpSpeaker>(
      loop_, pop.model.id + "-rs", ixp->rs_asn, ixp->rs_address);

  // vBGP router <-> route server session. On the RS side the session is
  // transparent (no RS-ASN prepend, member next-hops preserved).
  ixp->rs_peer_at_router = pop.router->add_neighbor(
      {.name = "route-server", .asn = ixp->rs_asn,
       .local_address = ixp->router_fabric_address,
       .remote_address = ixp->rs_address,
       .interface = ixp->router_interface,
       .global_id = 0});
  bgp::PeerConfig rs_to_router;
  rs_to_router.name = pop.model.id;
  rs_to_router.peer_asn = pop.router->config().asn;
  rs_to_router.local_address = ixp->rs_address;
  rs_to_router.peer_address = ixp->router_fabric_address;
  rs_to_router.transparent = true;
  ixp->router_peer_at_rs = ixp->route_server->add_peer(rs_to_router);
  auto rs_streams = sim::StreamChannel::make(loop_, Duration::micros(50));
  pop.router->speaker().connect_peer(ixp->rs_peer_at_router, rs_streams.a);
  ixp->route_server->connect_peer(ixp->router_peer_at_rs, rs_streams.b);

  // Members: hosts on the fabric with their own speakers, peering with the
  // route server only.
  for (std::size_t m = 0; m < options_.route_server_members; ++m) {
    auto member = std::make_unique<IxpMemberRuntime>();
    member->asn = 64700u + pop_index * 100u + static_cast<bgp::Asn>(m);
    member->fabric_address =
        Ipv4Address(10, pop_index, 250, static_cast<std::uint8_t>(10 + m));

    MacAddress mac = MacAddress::from_id(
        0x31000000u | (pop_index << 8) | static_cast<std::uint32_t>(m));
    sim::Link& link = attach_port(mac);
    member->link = nullptr;  // owned by ixp->fabric_links
    member->host =
        std::make_unique<ip::Host>(loop_, "member-as" + std::to_string(member->asn));
    member->host->add_attached_interface("ixp", mac,
                                         {member->fabric_address, 24}, link,
                                         /*side_a=*/true);
    // Traffic toward experiment space flows back via the vBGP router.
    member->host->routes().insert(ip::Route{Ipv4Prefix(Ipv4Address(), 0),
                                            ixp->router_fabric_address, 0, 0});

    member->speaker = std::make_unique<bgp::BgpSpeaker>(
        loop_, "as" + std::to_string(member->asn), member->asn,
        member->fabric_address);
    bgp::PeerConfig member_to_rs;
    member_to_rs.name = "rs";
    member_to_rs.peer_asn = ixp->rs_asn;
    member_to_rs.local_address = member->fabric_address;
    member_to_rs.peer_address = ixp->rs_address;
    member->peer_at_rs = member->speaker->add_peer(member_to_rs);
    bgp::PeerConfig rs_to_member;
    rs_to_member.name = "as" + std::to_string(member->asn);
    rs_to_member.peer_asn = member->asn;
    rs_to_member.local_address = ixp->rs_address;
    rs_to_member.peer_address = member->fabric_address;
    rs_to_member.transparent = true;
    member->rs_side = ixp->route_server->add_peer(rs_to_member);

    auto streams = sim::StreamChannel::make(loop_, Duration::micros(50));
    member->speaker->connect_peer(member->peer_at_rs, streams.a);
    ixp->route_server->connect_peer(member->rs_side, streams.b);

    ixp->members.push_back(std::move(member));
  }
  (void)fabric_subnet;
  pop.ixp = std::move(ixp);
}

void Peering::build_backbone() {
  // Full mesh among backbone PoPs (iBGP requires it without route
  // reflection).
  std::vector<PopRuntime*> backbone_pops;
  for (auto& [id, pop] : pops_) {
    if (pop->model.on_backbone) backbone_pops.push_back(pop.get());
  }
  for (std::size_t i = 0; i < backbone_pops.size(); ++i) {
    for (std::size_t j = i + 1; j < backbone_pops.size(); ++j) {
      fabric_.provision(*backbone_pops[i]->router, *backbone_pops[j]->router,
                        options_.backbone_capacity_bps,
                        options_.backbone_latency);
    }
  }
}

PopRuntime* Peering::pop(const std::string& pop_id) {
  auto it = pops_.find(pop_id);
  return it == pops_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Peering::pop_ids() const {
  std::vector<std::string> out;
  for (const auto& [id, pop] : pops_) out.push_back(id);
  return out;
}

Result<ExperimentAttachment> Peering::attach_experiment(
    const std::string& exp_id, const std::string& pop_id) {
  return attach_experiment(exp_id, pop_id, options_.tunnel_latency);
}

Result<ExperimentAttachment> Peering::attach_experiment(
    const std::string& exp_id, const std::string& pop_id,
    Duration link_latency) {
  const ExperimentModel* exp = db_->experiment(exp_id);
  if (!exp) return Error("peering: no such experiment: " + exp_id);
  if (exp->status != ExperimentStatus::kApproved &&
      exp->status != ExperimentStatus::kActive)
    return Error("peering: experiment not approved: " + exp_id);
  PopRuntime* pop = this->pop(pop_id);
  if (!pop) return Error("peering: no such pop: " + pop_id);

  if (auto st = db_->activate_experiment(exp_id, pop_id); !st) return st.error();

  std::uint8_t pop_index = pop_indexes_[pop_id];
  int tunnel_index = pop->next_tunnel_index++;

  ExperimentAttachment attachment;
  attachment.experiment_id = exp_id;
  attachment.pop_id = pop_id;
  attachment.experiment_asn = exp->asn;
  attachment.platform_asn = db_->model().resources.asns.front();
  attachment.router_tunnel_address =
      Ipv4Address(100, static_cast<std::uint8_t>(64 + pop_index),
                  static_cast<std::uint8_t>(tunnel_index), 1);
  attachment.client_tunnel_address =
      Ipv4Address(100, static_cast<std::uint8_t>(64 + pop_index),
                  static_cast<std::uint8_t>(tunnel_index), 2);

  // The attachment link: an OpenVPN tunnel (tens of ms) or a colocated
  // CloudLab site hop (microseconds).
  sim::LinkConfig tunnel_config;
  tunnel_config.latency = link_latency;
  tunnel_config.name = exp_id + "@" + pop_id;
  tunnels_.push_back(std::make_unique<sim::Link>(loop_, tunnel_config));
  attachment.tunnel = tunnels_.back().get();

  attachment.router_interface = pop->router->add_attached_interface(
      "tun-" + exp_id,
      MacAddress::from_id(0xDD000000u | (pop_index << 16) |
                          static_cast<std::uint32_t>(tunnel_index)),
      {attachment.router_tunnel_address, 24}, *attachment.tunnel,
      /*side_a=*/true, /*promiscuous=*/true);
  attachment.router = pop->router.get();

  attachment.peer_at_router = pop->router->add_experiment(
      {.experiment_id = exp_id, .asn = exp->asn,
       .local_address = attachment.router_tunnel_address,
       .remote_address = attachment.client_tunnel_address,
       .interface = attachment.router_interface});

  // Enforcement grants at this PoP. The grant's allocation covers the
  // experiment's prefixes plus its tunnel address (sources for control
  // traffic).
  enforce::ExperimentGrant grant = exp->to_grant();
  grant.allocated_prefixes.push_back(
      Ipv4Prefix(attachment.client_tunnel_address, 32));
  if (pop->model.bandwidth_limit_bps > 0 &&
      (grant.traffic_rate_bps == 0 ||
       grant.traffic_rate_bps > pop->model.bandwidth_limit_bps))
    grant.traffic_rate_bps = pop->model.bandwidth_limit_bps;
  pop->control->set_grant(grant);
  if (auto st = pop->data->install(grant); !st) return st.error();

  // Mux routes: local delivery here, backbone delivery everywhere else.
  for (const auto& prefix : exp->allocated_prefixes) {
    pop->router->add_experiment_route(prefix, exp_id,
                                      attachment.router_interface,
                                      attachment.client_tunnel_address);
    for (auto& [other_id, other] : pops_) {
      if (other_id == pop_id) continue;
      if (other->router->has_local_experiment_route(prefix)) continue;
      const backbone::Circuit* circuit =
          fabric_.circuit_between(other_id, pop_id);
      if (!circuit) continue;
      bool other_is_a = circuit->pop_a == other_id;
      Ipv4Address gateway = other_is_a ? circuit->addr_b : circuit->addr_a;
      int interface = other_is_a ? circuit->if_a : circuit->if_b;
      other->router->add_remote_experiment_route(prefix, interface, gateway);
    }
  }

  pop->experiment_peers[exp_id] = attachment.peer_at_router;

  // BGP transport over the tunnel.
  auto streams = sim::StreamChannel::make(loop_, link_latency);
  pop->router->speaker().connect_peer(attachment.peer_at_router, streams.a);
  attachment.client_stream = streams.b;

  LOG_INFO("peering", exp_id << " attached at " << pop_id);
  return attachment;
}

Result<std::shared_ptr<sim::StreamEndpoint>> Peering::reconnect_experiment(
    const ExperimentAttachment& attachment) {
  PopRuntime* pop = this->pop(attachment.pop_id);
  if (!pop) return Error("peering: no such pop: " + attachment.pop_id);
  auto streams = sim::StreamChannel::make(loop_, options_.tunnel_latency);
  pop->router->speaker().connect_peer(attachment.peer_at_router, streams.a);
  return streams.b;
}

Status Peering::feed_routes(const std::string& pop_id,
                            std::size_t neighbor_index,
                            const std::vector<inet::FeedRoute>& feed) {
  PopRuntime* pop = this->pop(pop_id);
  if (!pop) return Error("peering: no such pop: " + pop_id);
  if (neighbor_index >= pop->neighbors.size())
    return Error("peering: neighbor index out of range");
  auto& nb = pop->neighbors[neighbor_index];
  for (const auto& route : feed) {
    bgp::PathAttributes attrs = route.attrs;
    // The neighbor speaker prepends its own ASN on export; the feed's
    // first hop is the neighbor itself, so drop it to avoid duplication.
    auto path = attrs.as_path.flatten();
    if (!path.empty() && path.front() == nb->model.asn)
      path.erase(path.begin());
    attrs.as_path = bgp::AsPath(path);
    attrs.next_hop = Ipv4Address();
    nb->speaker->originate(route.prefix, attrs);
  }
  return Status::Ok();
}

Status Peering::feed_member_routes(const std::string& pop_id,
                                   std::size_t member_index,
                                   const std::vector<inet::FeedRoute>& feed) {
  PopRuntime* pop = this->pop(pop_id);
  if (!pop) return Error("peering: no such pop: " + pop_id);
  if (!pop->ixp) return Error("peering: pop has no IXP fabric: " + pop_id);
  if (member_index >= pop->ixp->members.size())
    return Error("peering: member index out of range");
  auto& member = pop->ixp->members[member_index];
  for (const auto& route : feed) {
    bgp::PathAttributes attrs = route.attrs;
    auto path = attrs.as_path.flatten();
    if (!path.empty() && path.front() == member->asn) path.erase(path.begin());
    attrs.as_path = bgp::AsPath(path);
    attrs.next_hop = Ipv4Address();  // filled with the fabric address
    member->speaker->originate(route.prefix, attrs);
  }
  return Status::Ok();
}

Status Peering::refresh_experiment(const std::string& exp_id) {
  const ExperimentModel* exp = db_->experiment(exp_id);
  if (!exp) return Error("peering: no such experiment: " + exp_id);
  for (auto& [pop_id, pop] : pops_) {
    auto peer_it = pop->experiment_peers.find(exp_id);
    if (peer_it == pop->experiment_peers.end()) continue;
    // Regenerate and install the grant from the current model.
    enforce::ExperimentGrant grant = exp->to_grant();
    // Preserve the tunnel-address allowance established at attach time.
    if (const auto* old = pop->control->grant(exp_id)) {
      for (const auto& prefix : old->allocated_prefixes) {
        if (prefix.length() == 32) grant.allocated_prefixes.push_back(prefix);
      }
    }
    pop->control->set_grant(grant);
    if (auto st = pop->data->install(grant); !st) return st;
    // Ask the experiment to resend its announcements so the new policy is
    // applied over the live session.
    pop->router->speaker().request_refresh(peer_it->second);
  }
  return Status::Ok();
}

void Peering::sync_enforcement_state() {
  // Pairwise max-merge converges every store to the AS-wide maximum.
  enforce::StateStore merged;
  for (auto& [id, pop] : pops_) merged.merge_max(pop->control->state());
  for (auto& [id, pop] : pops_) pop->control->state().merge_max(merged);
}

vbgp::FibAccounting Peering::fib_accounting() const {
  vbgp::FibAccounting total;
  for (const auto& [id, pop] : pops_)
    if (pop->router) total += pop->router->fib_accounting();
  return total;
}

}  // namespace peering::platform
