#include "platform/netlink.h"

#include <algorithm>

namespace peering::platform {

Status NetlinkSim::count_mutation() {
  ++mutations_;
  if (auto it = fail_at_.find(mutations_); it != fail_at_.end()) {
    fail_at_.erase(it);
    return Error("netlink: injected failure at mutation " +
                 std::to_string(mutations_));
  }
  return Status::Ok();
}

Status NetlinkSim::create_interface(const std::string& name) {
  if (auto st = count_mutation(); !st) return st;
  if (interfaces_.count(name)) return Error("netlink: interface exists: " + name);
  interfaces_[name] = NlInterface{name, false, {}};
  return Status::Ok();
}

Status NetlinkSim::delete_interface(const std::string& name) {
  if (auto st = count_mutation(); !st) return st;
  if (!interfaces_.erase(name))
    return Error("netlink: no such interface: " + name);
  // Routes over the interface are flushed by the kernel.
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->interface == name)
      it = routes_.erase(it);
    else
      ++it;
  }
  return Status::Ok();
}

Status NetlinkSim::set_link_up(const std::string& name, bool up) {
  if (auto st = count_mutation(); !st) return st;
  auto it = interfaces_.find(name);
  if (it == interfaces_.end())
    return Error("netlink: no such interface: " + name);
  it->second.up = up;
  return Status::Ok();
}

Status NetlinkSim::add_address(const std::string& ifname, NlAddress address) {
  if (auto st = count_mutation(); !st) return st;
  auto it = interfaces_.find(ifname);
  if (it == interfaces_.end())
    return Error("netlink: no such interface: " + ifname);
  for (const auto& existing : it->second.addresses)
    if (existing.address == address.address)
      return Error("netlink: address exists");
  it->second.addresses.push_back(address);
  return Status::Ok();
}

Status NetlinkSim::remove_address(const std::string& ifname,
                                  Ipv4Address address) {
  if (auto st = count_mutation(); !st) return st;
  auto it = interfaces_.find(ifname);
  if (it == interfaces_.end())
    return Error("netlink: no such interface: " + ifname);
  auto& addrs = it->second.addresses;
  auto found = std::find_if(addrs.begin(), addrs.end(), [&](const NlAddress& a) {
    return a.address == address;
  });
  if (found == addrs.end()) return Error("netlink: no such address");
  addrs.erase(found);
  return Status::Ok();
}

Status NetlinkSim::add_route(const NlRoute& route) {
  if (auto st = count_mutation(); !st) return st;
  if (!interfaces_.count(route.interface))
    return Error("netlink: no such interface: " + route.interface);
  if (!routes_.insert(route).second) return Error("netlink: route exists");
  return Status::Ok();
}

Status NetlinkSim::remove_route(const NlRoute& route) {
  if (auto st = count_mutation(); !st) return st;
  if (!routes_.erase(route)) return Error("netlink: no such route");
  return Status::Ok();
}

Status NetlinkSim::add_rule(const NlRule& rule) {
  if (auto st = count_mutation(); !st) return st;
  if (!rules_.insert(rule).second) return Error("netlink: rule exists");
  return Status::Ok();
}

Status NetlinkSim::remove_rule(const NlRule& rule) {
  if (auto st = count_mutation(); !st) return st;
  if (!rules_.erase(rule)) return Error("netlink: no such rule");
  return Status::Ok();
}

std::vector<NlInterface> NetlinkSim::interfaces() const {
  std::vector<NlInterface> out;
  out.reserve(interfaces_.size());
  for (const auto& [name, nif] : interfaces_) out.push_back(nif);
  return out;
}

std::optional<NlInterface> NetlinkSim::interface(const std::string& name) const {
  auto it = interfaces_.find(name);
  if (it == interfaces_.end()) return std::nullopt;
  return it->second;
}

}  // namespace peering::platform
