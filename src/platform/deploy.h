// Standardized deployment (§5): containerized services pushed to every PoP
// server by an Ansible-like orchestrator — reset to a known state, canary a
// configuration change on a subset of the fleet, verify health, then roll
// out fleet-wide; periodic runs detect and repair drift. Configuration
// versions come from the ConfigDatabase; rollbacks re-deploy a prior
// version from the history.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "netbase/result.h"

namespace peering::platform {

/// One containerized service at one version ("bird:2.0.7", "enforcer:1.4").
struct ContainerSpec {
  std::string service;
  std::string version;
  bool operator==(const ContainerSpec&) const = default;
};

/// The state the orchestrator tracks per server.
struct ServerState {
  std::string server_id;  // usually the PoP id
  std::map<std::string, std::string> running;  // service -> version
  std::uint64_t config_version = 0;
  bool healthy = true;
};

struct RolloutReport {
  bool success = false;
  std::vector<std::string> canaried;
  std::vector<std::string> updated;
  std::string error;
  /// True when the canary failed health checks and the rollout stopped
  /// before touching the rest of the fleet.
  bool aborted_at_canary = false;
};

class DeploymentOrchestrator {
 public:
  /// Health check invoked after each server update; returning false fails
  /// the rollout (and stops it if still in the canary phase).
  using HealthCheck = std::function<bool(const ServerState&)>;

  void register_server(const std::string& server_id);
  const ServerState* server(const std::string& server_id) const;
  std::vector<std::string> servers() const;

  void set_health_check(HealthCheck check) { health_check_ = std::move(check); }

  /// Deploys a container to the fleet: canary first (`canary_count`
  /// servers), health-check, then the rest. No server beyond the canaries
  /// is touched if a canary fails (§5: "we canary the new configuration on
  /// a subset of our production fleet as a safeguard").
  RolloutReport deploy_container(const ContainerSpec& spec,
                                 std::size_t canary_count = 1);

  /// Pushes a configuration version the same way.
  RolloutReport deploy_config(std::uint64_t config_version,
                              std::size_t canary_count = 1);

  /// Drift detection: servers whose config version differs from `want`.
  std::vector<std::string> drifted(std::uint64_t want) const;

  /// Reconciliation pass: re-applies `want` to drifted servers only
  /// (the periodic Ansible run).
  std::size_t reconcile(std::uint64_t want);

 private:
  template <typename Apply>
  RolloutReport rollout(Apply apply, std::size_t canary_count);

  std::map<std::string, ServerState> servers_;
  HealthCheck health_check_;
};

}  // namespace peering::platform
