#include "platform/deploy.h"

namespace peering::platform {

void DeploymentOrchestrator::register_server(const std::string& server_id) {
  servers_.emplace(server_id, ServerState{server_id, {}, 0, true});
}

const ServerState* DeploymentOrchestrator::server(
    const std::string& server_id) const {
  auto it = servers_.find(server_id);
  return it == servers_.end() ? nullptr : &it->second;
}

std::vector<std::string> DeploymentOrchestrator::servers() const {
  std::vector<std::string> out;
  for (const auto& [id, state] : servers_) out.push_back(id);
  return out;
}

template <typename Apply>
RolloutReport DeploymentOrchestrator::rollout(Apply apply,
                                              std::size_t canary_count) {
  RolloutReport report;
  std::vector<ServerState*> order;
  for (auto& [id, state] : servers_) order.push_back(&state);

  std::size_t index = 0;
  for (ServerState* state : order) {
    bool is_canary = index < canary_count;
    ServerState backup = *state;
    apply(*state);
    bool healthy = !health_check_ || health_check_(*state);
    state->healthy = healthy;
    if (!healthy) {
      *state = backup;  // roll the server back
      state->healthy = false;
      report.error = "health check failed on " + state->server_id;
      report.aborted_at_canary = is_canary;
      report.success = false;
      return report;
    }
    if (is_canary)
      report.canaried.push_back(state->server_id);
    else
      report.updated.push_back(state->server_id);
    ++index;
  }
  report.success = true;
  return report;
}

RolloutReport DeploymentOrchestrator::deploy_container(
    const ContainerSpec& spec, std::size_t canary_count) {
  return rollout(
      [&spec](ServerState& state) { state.running[spec.service] = spec.version; },
      canary_count);
}

RolloutReport DeploymentOrchestrator::deploy_config(
    std::uint64_t config_version, std::size_t canary_count) {
  return rollout(
      [config_version](ServerState& state) {
        state.config_version = config_version;
      },
      canary_count);
}

std::vector<std::string> DeploymentOrchestrator::drifted(
    std::uint64_t want) const {
  std::vector<std::string> out;
  for (const auto& [id, state] : servers_)
    if (state.config_version != want) out.push_back(id);
  return out;
}

std::size_t DeploymentOrchestrator::reconcile(std::uint64_t want) {
  std::size_t fixed = 0;
  for (auto& [id, state] : servers_) {
    if (state.config_version != want) {
      state.config_version = want;
      ++fixed;
    }
  }
  return fixed;
}

}  // namespace peering::platform
