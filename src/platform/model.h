// The intent model (§5): the desired configuration of the whole platform —
// PoPs, interconnections, experiments and their capabilities — stored
// centrally and transformed into per-service configuration by templating.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "enforce/capabilities.h"
#include "netbase/prefix.h"

namespace peering::platform {

enum class PopType : std::uint8_t { kIxp, kUniversity };
enum class InterconnectType : std::uint8_t {
  kTransit,
  kBilateralPeer,
  kRouteServer,
};

const char* pop_type_name(PopType type);
const char* interconnect_type_name(InterconnectType type);

/// One BGP interconnection at a PoP.
struct InterconnectModel {
  std::string name;
  bgp::Asn asn = 0;
  InterconnectType type = InterconnectType::kBilateralPeer;
  /// Platform-wide neighbor id (feeds the global next-hop pool).
  std::uint32_t global_id = 0;
};

/// One PoP in the desired state.
struct PopModel {
  std::string id;          // e.g. "amsterdam01"
  std::string location;    // e.g. "AMS-IX, Amsterdam"
  PopType type = PopType::kIxp;
  std::vector<InterconnectModel> interconnects;
  /// Traffic shaping limit agreed with the site (0 = unconstrained). Only
  /// two PEERING sites have one (§4.7).
  std::uint64_t bandwidth_limit_bps = 0;
  bool on_backbone = false;

  std::size_t transit_count() const {
    std::size_t n = 0;
    for (const auto& ic : interconnects)
      if (ic.type == InterconnectType::kTransit) ++n;
    return n;
  }
  std::size_t bilateral_peer_count() const {
    std::size_t n = 0;
    for (const auto& ic : interconnects)
      if (ic.type == InterconnectType::kBilateralPeer) ++n;
    return n;
  }
};

enum class ExperimentStatus : std::uint8_t {
  kProposed,
  kApproved,
  kActive,
  kRejected,
  kRetired,
};

const char* experiment_status_name(ExperimentStatus status);

/// An experiment's record in the management database (§4.6): proposal
/// metadata, allocation, capabilities, lifecycle status.
struct ExperimentModel {
  std::string id;
  std::string description;
  std::string contact;
  ExperimentStatus status = ExperimentStatus::kProposed;
  bgp::Asn asn = 0;
  std::vector<Ipv4Prefix> allocated_prefixes;
  std::optional<Ipv6Prefix> allocated_v6;
  std::set<enforce::Capability> capabilities;
  int max_poisoned_asns = 0;
  int max_communities = 0;
  int max_updates_per_day = 144;
  std::uint64_t traffic_rate_bps = 0;
  /// PoPs the experiment is provisioned at.
  std::vector<std::string> pops;

  /// The grant handed to the enforcement engines.
  enforce::ExperimentGrant to_grant() const {
    enforce::ExperimentGrant grant;
    grant.experiment_id = id;
    grant.allocated_prefixes = allocated_prefixes;
    grant.allowed_origin_asns = {asn};
    grant.capabilities = capabilities;
    grant.max_poisoned_asns = max_poisoned_asns;
    grant.max_communities = max_communities;
    grant.max_updates_per_day = max_updates_per_day;
    grant.traffic_rate_bps = traffic_rate_bps;
    return grant;
  }
};

/// The platform's numbered resources (§4.2): 8 ASNs (three 4-byte),
/// 40 IPv4 /24s, one IPv6 /32.
struct NumberedResources {
  std::vector<bgp::Asn> asns;
  std::vector<Ipv4Prefix> prefix_pool;
  Ipv6Prefix v6_allocation;

  static NumberedResources peering_defaults();
};

/// The full desired state.
struct PlatformModel {
  NumberedResources resources;
  std::map<std::string, PopModel> pops;
  std::map<std::string, ExperimentModel> experiments;
  std::uint64_t version = 0;
};

}  // namespace peering::platform
