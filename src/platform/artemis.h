// ARTEMIS-style prefix-hijack detection (Sermpezis et al., ToN'18 — §7.1:
// "assessing a technique to identify and neutralize BGP prefix hijacking"
// was evaluated on PEERING). The detector consumes route-collector feeds
// and flags announcements of the operator's own space with an unexpected
// origin (exact-prefix MOAS) or an unexpected more-specific (sub-prefix
// hijack), within seconds of the offending update reaching a collector.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "platform/collector.h"

namespace peering::platform {

enum class HijackType : std::uint8_t {
  /// Same prefix, different origin AS (MOAS conflict).
  kExactMoas,
  /// A more-specific of an owned prefix from an unexpected origin.
  kSubPrefix,
};

struct HijackAlert {
  SimTime at;
  Ipv4Prefix announced;
  Ipv4Prefix owned;  // the configured prefix the announcement conflicts with
  bgp::Asn offending_origin = 0;
  std::string feed;
  HijackType type = HijackType::kExactMoas;
};

class HijackDetector {
 public:
  /// `owned` is the operator's configured address space; `legitimate` the
  /// origins allowed to announce it (ARTEMIS's ground-truth config).
  HijackDetector(std::vector<Ipv4Prefix> owned, std::set<bgp::Asn> legitimate)
      : owned_(std::move(owned)), legitimate_(std::move(legitimate)) {}

  /// Processes one collector record; appends an alert if it conflicts.
  void observe(const ArchiveRecord& record);

  /// Catches up on everything a collector archived since the last poll.
  void poll(const RouteCollector& collector);

  const std::vector<HijackAlert>& alerts() const { return alerts_; }

  /// ARTEMIS mitigation step 1: the more-specifics the victim should
  /// announce to out-prefix the hijacker (two halves of each affected
  /// owned /24-or-shorter prefix).
  std::vector<Ipv4Prefix> mitigation_prefixes(const HijackAlert& alert) const;

 private:
  std::vector<Ipv4Prefix> owned_;
  std::set<bgp::Asn> legitimate_;
  std::vector<HijackAlert> alerts_;
  std::size_t poll_index_ = 0;
};

}  // namespace peering::platform
