// A passive BGP route collector in the style of RouteViews / RIPE RIS
// (§8: the measurement tools PEERING complements). Experiments use
// collectors to *observe* how their announcements propagate — which is
// exactly how studies on the real platform validate visibility. The
// collector accepts every route, never exports anything, and archives a
// timestamped record of every update and withdrawal.
//
// The archive is bounded: a long soak feeding a collector must not grow
// memory without limit. Past `archive_capacity` records the collector
// drops new records (the in-RIB state stays correct; only the historical
// dump truncates), counts the drops, and emits one trace event per drop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bgp/speaker.h"

namespace peering::platform {

struct ArchiveRecord {
  SimTime at;
  std::string feed;  // which peer delivered it
  Ipv4Prefix prefix;
  bool withdrawn = false;
  bgp::AsPath as_path;
  std::vector<bgp::Community> communities;
};

class RouteCollector {
 public:
  /// `archive_capacity` bounds the in-memory archive (drop-newest).
  RouteCollector(sim::EventLoop* loop, std::string name, bgp::Asn asn,
                 Ipv4Address router_id,
                 std::size_t archive_capacity = 1 << 16);

  bgp::BgpSpeaker& speaker() { return *speaker_; }

  /// Registers a feed session (the collector never announces back).
  bgp::PeerId add_feed(const std::string& feed_name, bgp::Asn feed_asn);

  void connect(bgp::PeerId feed, std::shared_ptr<sim::StreamEndpoint> stream) {
    speaker_->connect_peer(feed, stream);
  }

  /// The archive, in arrival order (an MRT dump, morally), truncated at
  /// `archive_capacity` records.
  const std::vector<ArchiveRecord>& archive() const { return archive_; }

  /// Records rejected because the archive was full.
  std::uint64_t records_dropped() const { return records_dropped_; }

  /// Current visibility of a prefix: the AS paths present across feeds.
  std::vector<bgp::AsPath> visible_paths(const Ipv4Prefix& prefix) const;

  /// Archive records touching `prefix`, oldest first (a BGPlay-style
  /// event timeline).
  std::vector<ArchiveRecord> history(const Ipv4Prefix& prefix) const;

 private:
  sim::EventLoop* loop_;
  std::unique_ptr<bgp::BgpSpeaker> speaker_;
  std::map<bgp::PeerId, std::string> feed_names_;
  std::vector<ArchiveRecord> archive_;
  std::size_t archive_capacity_;
  std::uint64_t records_dropped_ = 0;
  obs::Registry* metrics_;
  obs::Counter* obs_dropped_;
};

}  // namespace peering::platform
