#include "platform/model.h"

namespace peering::platform {

const char* pop_type_name(PopType type) {
  return type == PopType::kIxp ? "IXP" : "university";
}

const char* interconnect_type_name(InterconnectType type) {
  switch (type) {
    case InterconnectType::kTransit:
      return "transit";
    case InterconnectType::kBilateralPeer:
      return "peer";
    case InterconnectType::kRouteServer:
      return "route-server";
  }
  return "?";
}

const char* experiment_status_name(ExperimentStatus status) {
  switch (status) {
    case ExperimentStatus::kProposed:
      return "proposed";
    case ExperimentStatus::kApproved:
      return "approved";
    case ExperimentStatus::kActive:
      return "active";
    case ExperimentStatus::kRejected:
      return "rejected";
    case ExperimentStatus::kRetired:
      return "retired";
  }
  return "?";
}

NumberedResources NumberedResources::peering_defaults() {
  NumberedResources res;
  // PEERING's primary ASN plus experiment ASNs; three 4-byte ASNs (§4.2).
  res.asns = {47065, 61574, 61575, 61576, 263842, 263843, 263844, 33207};
  // 40 /24s: modeled as 184.164.224/19 (32 x /24) + 138.185.228/22 (4) +
  // 204.9.168/22 (4), approximating PEERING's real allocations.
  for (int i = 0; i < 32; ++i)
    res.prefix_pool.push_back(Ipv4Prefix(
        Ipv4Address(184, 164, static_cast<std::uint8_t>(224 + i), 0), 24));
  for (int i = 0; i < 4; ++i)
    res.prefix_pool.push_back(Ipv4Prefix(
        Ipv4Address(138, 185, static_cast<std::uint8_t>(228 + i), 0), 24));
  for (int i = 0; i < 4; ++i)
    res.prefix_pool.push_back(Ipv4Prefix(
        Ipv4Address(204, 9, static_cast<std::uint8_t>(168 + i), 0), 24));
  auto v6 = Ipv6Address::parse("2804:269c::");
  res.v6_allocation = Ipv6Prefix{*v6, 32};
  return res;
}

}  // namespace peering::platform
