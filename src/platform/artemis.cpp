#include "platform/artemis.h"

namespace peering::platform {

void HijackDetector::observe(const ArchiveRecord& record) {
  if (record.withdrawn) return;
  bgp::Asn origin = record.as_path.origin_asn();
  if (legitimate_.count(origin)) return;

  for (const auto& owned : owned_) {
    if (record.prefix == owned) {
      alerts_.push_back({record.at, record.prefix, owned, origin, record.feed,
                         HijackType::kExactMoas});
      return;
    }
    if (owned.covers(record.prefix)) {
      alerts_.push_back({record.at, record.prefix, owned, origin, record.feed,
                         HijackType::kSubPrefix});
      return;
    }
  }
}

void HijackDetector::poll(const RouteCollector& collector) {
  const auto& archive = collector.archive();
  for (; poll_index_ < archive.size(); ++poll_index_)
    observe(archive[poll_index_]);
}

std::vector<Ipv4Prefix> HijackDetector::mitigation_prefixes(
    const HijackAlert& alert) const {
  std::vector<Ipv4Prefix> out;
  // Announce the two halves of the affected prefix: strictly more specific
  // than anything the hijacker announced at the same length, so LPM pulls
  // traffic back to the victim.
  std::uint8_t length = alert.announced.length();
  if (length >= 31) return out;  // cannot deaggregate further
  std::uint8_t half = static_cast<std::uint8_t>(length + 1);
  std::uint32_t base = alert.announced.address().value();
  out.push_back(Ipv4Prefix(Ipv4Address(base), half));
  out.push_back(Ipv4Prefix(Ipv4Address(base + (1u << (32 - half))), half));
  return out;
}

}  // namespace peering::platform
