// The vBGP network controller (§5): reconciles the server's live network
// configuration with the intent model under two hard requirements the
// paper spells out:
//
//  1. Minimal diff — "resetting the network configuration and applying the
//     new configuration from scratch would reset BGP sessions"; instead the
//     controller (i) removes configuration incompatible with the intended
//     state, (ii) keeps compatible configuration, (iii) adds what is
//     missing.
//  2. Transactional semantics — either all changes apply or none do
//     (partially complete changes are rolled back), so a server is never
//     left inconsistent.
//
// It also repairs primary addresses: Linux cannot change an interface's
// primary address directly, so when the primary is wrong the controller
// removes and re-adds the interface's addresses in the intended order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "platform/netlink.h"

namespace peering::platform {

/// The desired network state of one server.
struct DesiredNetworkState {
  std::vector<NlInterface> interfaces;
  std::vector<NlRoute> routes;
  std::vector<NlRule> rules;
};

struct ApplyResult {
  bool success = false;
  /// Mutations issued (excluding rollback operations).
  int changes_applied = 0;
  bool rolled_back = false;
  /// Undo operations that themselves failed during rollback. Non-zero means
  /// the server may be inconsistent; each failure also bumps the
  /// `controller_rollback_failures_total` counter and emits a trace event,
  /// so fleet-level orchestration can observe it instead of trusting logs.
  int rollback_failures = 0;
  std::string error;
};

class NetworkController {
 public:
  explicit NetworkController(NetlinkSim* netlink);

  /// Reconciles live state with `desired` transactionally.
  ApplyResult apply(const DesiredNetworkState& desired);

  /// True if live state already matches `desired` (apply would be a no-op).
  bool in_sync(const DesiredNetworkState& desired) const;

 private:
  /// One reversible step of the transaction.
  struct Op {
    std::function<Status()> run;
    std::function<Status()> undo;
    std::string description;
  };

  /// Plans the minimal-diff operation list.
  std::vector<Op> plan(const DesiredNetworkState& desired) const;

  NetlinkSim* netlink_;
  obs::Registry* metrics_;
  obs::Counter* obs_rollbacks_;
  obs::Counter* obs_rollback_failures_;
};

}  // namespace peering::platform
