#include "platform/templating.h"

#include <algorithm>
#include <sstream>

namespace peering::platform {

namespace {

/// Renders one BGP protocol stanza in BIRD style.
void render_bgp_protocol(std::ostringstream& out, const std::string& name,
                         bgp::Asn asn, const std::string& description,
                         bool add_paths, const std::string& import_filter,
                         const std::string& export_filter) {
  out << "protocol bgp " << name << " {\n";
  out << "  description \"" << description << "\";\n";
  out << "  local as 47065;\n";
  out << "  neighbor as " << asn << ";\n";
  out << "  hold time 90;\n";
  out << "  keepalive time 30;\n";
  out << "  connect retry time 30;\n";
  out << "  graceful restart on;\n";
  if (add_paths) out << "  add paths tx rx;\n";
  out << "  ipv4 {\n";
  out << "    import filter " << import_filter << ";\n";
  out << "    export filter " << export_filter << ";\n";
  out << "  };\n";
  out << "}\n\n";
}

void render_experiment_filter(std::ostringstream& out,
                              const ExperimentModel& exp) {
  out << "filter import_experiment_" << exp.id << " {\n";
  out << "  # allocation ownership\n";
  bool first = true;
  out << "  if ! (net ~ [";
  for (const auto& prefix : exp.allocated_prefixes) {
    if (!first) out << ", ";
    out << prefix.str() << "+";
    first = false;
  }
  out << "]) then reject;\n";
  out << "  if (bgp_path.last != " << exp.asn << ") then reject;\n";
  if (exp.capabilities.count(enforce::Capability::kAsPathPoisoning)) {
    out << "  # poisoning allowed: up to " << exp.max_poisoned_asns
        << " third-party ASNs\n";
  } else {
    out << "  if (bgp_path.len > 4) then reject;  # no poisoning grant\n";
  }
  if (exp.capabilities.count(enforce::Capability::kCommunities)) {
    out << "  # communities allowed: up to " << exp.max_communities << "\n";
  } else {
    out << "  bgp_community.delete([(*, *)]);  # strip: no community grant\n";
  }
  out << "  accept;\n";
  out << "}\n\n";
}

}  // namespace

std::size_t GeneratedConfigs::bird_line_count() const {
  return static_cast<std::size_t>(
      std::count(bird_config.begin(), bird_config.end(), '\n'));
}

GeneratedConfigs generate_pop_configs(const PlatformModel& model,
                                      const std::string& pop_id) {
  GeneratedConfigs configs;
  auto pop_it = model.pops.find(pop_id);
  if (pop_it == model.pops.end()) return configs;
  const PopModel& pop = pop_it->second;

  // ------------------------- BIRD configuration -------------------------
  std::ostringstream bird;
  bird << "# generated from model version " << model.version << " for "
       << pop.id << " (" << pop.location << ")\n";
  bird << "router id 10.255.0.1;\n\n";
  bird << "filter import_neighbor {\n"
       << "  # next-hop rewrite to the neighbor's global pool address is\n"
       << "  # performed by the vBGP layer\n"
       << "  accept;\n"
       << "}\n\n";
  bird << "filter export_neighbor {\n"
       << "  # only experiment-originated announcements reach the Internet\n"
       << "  if ! (bgp_large_community ~ [(47065, 0xFFFF0001, *)]) then reject;\n"
       << "  bgp_community.delete([(47065, *)]);\n"
       << "  bgp_community.delete([(47064, *)]);\n"
       << "  accept;\n"
       << "}\n\n";

  for (const auto& ic : pop.interconnects) {
    std::string proto_name = ic.name;
    std::replace(proto_name.begin(), proto_name.end(), '-', '_');
    render_bgp_protocol(bird, proto_name, ic.asn,
                        std::string(interconnect_type_name(ic.type)) + " at " +
                            pop.location,
                        /*add_paths=*/false, "import_neighbor",
                        "export_neighbor");
  }

  // Experiment sessions at this PoP.
  for (const auto& [id, exp] : model.experiments) {
    if (exp.status != ExperimentStatus::kActive &&
        exp.status != ExperimentStatus::kApproved)
      continue;
    if (std::find(exp.pops.begin(), exp.pops.end(), pop_id) == exp.pops.end())
      continue;
    render_experiment_filter(bird, exp);
    render_bgp_protocol(bird, "experiment_" + exp.id, exp.asn,
                        "experiment " + exp.id, /*add_paths=*/true,
                        "import_experiment_" + exp.id, "export_all_paths");
  }
  configs.bird_config = bird.str();

  // ------------------------ OpenVPN configuration -----------------------
  std::ostringstream vpn;
  vpn << "# OpenVPN server for " << pop.id << "\n"
      << "port 1194\nproto udp\ndev tap0\n"
      << "server 100.64.0.0 255.255.192.0\n";
  for (const auto& [id, exp] : model.experiments) {
    if (std::find(exp.pops.begin(), exp.pops.end(), pop_id) == exp.pops.end())
      continue;
    vpn << "# client " << id << "\n";
    vpn << "client-config-dir ccd/" << id << "\n";
  }
  configs.openvpn_config = vpn.str();

  // --------------------- Enforcement configuration ----------------------
  std::ostringstream enf;
  enf << "pop: " << pop.id << "\n";
  if (pop.bandwidth_limit_bps > 0)
    enf << "bandwidth_limit_bps: " << pop.bandwidth_limit_bps << "\n";
  for (const auto& [id, exp] : model.experiments) {
    if (exp.status != ExperimentStatus::kActive &&
        exp.status != ExperimentStatus::kApproved)
      continue;
    enf << "experiment " << id << ":\n";
    enf << "  max_updates_per_day: " << exp.max_updates_per_day << "\n";
    for (const auto& prefix : exp.allocated_prefixes)
      enf << "  allocation: " << prefix.str() << "\n";
    for (auto cap : exp.capabilities)
      enf << "  capability: " << enforce::capability_name(cap) << "\n";
  }
  configs.enforcer_config = enf.str();

  // ----------------------- Desired network state ------------------------
  NlInterface lo{"lo", true, {{Ipv4Address(127, 0, 0, 1), 8}}};
  configs.network.interfaces.push_back(lo);
  NlInterface phys{"eth0", true, {{Ipv4Address(10, 0, 0, 1), 24}}};
  configs.network.interfaces.push_back(phys);

  // One policy rule + table per interconnect: the per-neighbor FIBs of the
  // vBGP data plane (§3.2.2).
  std::uint32_t table = 1000;
  std::uint32_t priority = 100;
  for (const auto& ic : pop.interconnects) {
    NlRule rule;
    rule.priority = priority++;
    rule.selector = "dmac:neighbor-" + std::to_string(ic.global_id);
    rule.table = table++;
    configs.network.rules.push_back(rule);
  }

  // One tap interface per connected experiment.
  int tap = 0;
  for (const auto& [id, exp] : model.experiments) {
    if (exp.status != ExperimentStatus::kActive &&
        exp.status != ExperimentStatus::kApproved)
      continue;
    if (std::find(exp.pops.begin(), exp.pops.end(), pop_id) == exp.pops.end())
      continue;
    NlInterface tap_if{"tap" + std::to_string(tap), true,
                       {{Ipv4Address(100, 64, static_cast<std::uint8_t>(tap), 1),
                         24}}};
    configs.network.interfaces.push_back(tap_if);
    for (const auto& prefix : exp.allocated_prefixes) {
      NlRoute route;
      route.prefix = prefix;
      route.gateway = Ipv4Address(100, 64, static_cast<std::uint8_t>(tap), 2);
      route.interface = "tap" + std::to_string(tap);
      configs.network.routes.push_back(route);
    }
    ++tap;
  }

  return configs;
}

}  // namespace peering::platform
