// The PEERING platform (§4): assembles everything into a running,
// simulated deployment — a vBGP router per PoP with its enforcement
// engines, live neighbor routers exchanging real BGP and traffic, the
// backbone fabric with its iBGP mesh, and the turn-key experiment
// attachment flow (tunnel + ADD-PATH session + enforcement grants + mux
// routes at every PoP).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backbone/fabric.h"
#include "ether/switch.h"
#include "bgp/speaker.h"
#include "enforce/control_policy.h"
#include "enforce/data_enforcer.h"
#include "inet/route_feed.h"
#include "ip/host.h"
#include "platform/configdb.h"
#include "sim/event_loop.h"
#include "vbgp/vrouter.h"

namespace peering::platform {

struct PeeringOptions {
  /// Live neighbor routers materialized per PoP (the rest of the
  /// interconnects exist in the model and generated configs only; at
  /// AMS-IX scale nobody needs 854 live peers in a unit test).
  std::size_t max_live_neighbors_per_pop = 4;
  bool build_backbone = true;
  std::uint64_t backbone_capacity_bps = 1'000'000'000;
  Duration backbone_latency = Duration::millis(15);
  /// OpenVPN tunnel latency between an experiment and a PoP (§7.4 notes
  /// tunnels add latency).
  Duration tunnel_latency = Duration::millis(20);
  /// Build a shared layer-2 IXP fabric (learning switch) at IXP PoPs, with
  /// a transparent route server (RFC 7947) and this many live member
  /// routers behind it. This is how the bulk of PEERING's 923 peers
  /// connect (§4.2): one BGP session to the route server, data plane
  /// directly to each member across the fabric.
  bool build_ixp_fabric = false;
  std::size_t route_server_members = 3;
};

/// One live neighbor router at a PoP.
struct NeighborRuntime {
  InterconnectModel model;
  std::unique_ptr<sim::Link> link;
  std::unique_ptr<ip::Host> host;
  std::unique_ptr<bgp::BgpSpeaker> speaker;
  bgp::PeerId peer_at_router = 0;
  bgp::PeerId peer_at_neighbor = 0;
  Ipv4Address router_address;
  Ipv4Address neighbor_address;
  int router_interface = -1;
};

/// A route-server member: an IXP participant that exchanges routes via the
/// route server but carries data traffic directly across the fabric.
struct IxpMemberRuntime {
  bgp::Asn asn = 0;
  Ipv4Address fabric_address;
  std::unique_ptr<sim::Link> link;  // member <-> switch
  std::unique_ptr<ip::Host> host;
  std::unique_ptr<bgp::BgpSpeaker> speaker;
  bgp::PeerId peer_at_rs = 0;  // member's session on the route server
  bgp::PeerId rs_side = 0;     // route server's session toward this member
};

/// The IXP fabric at a PoP: the shared switch, the transparent route
/// server (control plane only — never on the data path), and live members.
struct IxpFabricRuntime {
  std::unique_ptr<ether::Switch> fabric;
  std::vector<std::unique_ptr<sim::Link>> fabric_links;
  Ipv4Address router_fabric_address;
  int router_interface = -1;
  bgp::Asn rs_asn = 0;
  Ipv4Address rs_address;
  std::unique_ptr<bgp::BgpSpeaker> route_server;
  bgp::PeerId rs_peer_at_router = 0;  // vBGP router's session to the RS
  bgp::PeerId router_peer_at_rs = 0;  // RS's session to the vBGP router
  std::vector<std::unique_ptr<IxpMemberRuntime>> members;
};

struct PopRuntime {
  PopModel model;
  std::unique_ptr<vbgp::VRouter> router;
  std::unique_ptr<enforce::ControlPlaneEnforcer> control;
  std::unique_ptr<enforce::DataPlaneEnforcer> data;
  std::vector<std::unique_ptr<NeighborRuntime>> neighbors;
  std::unique_ptr<IxpFabricRuntime> ixp;
  /// BGP peer id of each attached experiment at this PoP.
  std::map<std::string, bgp::PeerId> experiment_peers;
  int next_tunnel_index = 0;
};

/// Everything an experiment client needs after attaching at a PoP.
struct ExperimentAttachment {
  std::string experiment_id;
  std::string pop_id;
  sim::Link* tunnel = nullptr;
  vbgp::VRouter* router = nullptr;
  bgp::PeerId peer_at_router = 0;
  Ipv4Address router_tunnel_address;
  Ipv4Address client_tunnel_address;
  int router_interface = -1;
  /// The experiment's side of the BGP transport.
  std::shared_ptr<sim::StreamEndpoint> client_stream;
  bgp::Asn experiment_asn = 0;
  bgp::Asn platform_asn = 0;
};

class Peering {
 public:
  Peering(sim::EventLoop* loop, ConfigDatabase* db, PeeringOptions options = {});

  /// Builds every PoP (vBGP router, enforcement engines, live neighbors)
  /// and provisions the backbone mesh.
  void build();

  sim::EventLoop* loop() { return loop_; }
  ConfigDatabase& db() { return *db_; }
  backbone::BackboneFabric& fabric() { return fabric_; }

  PopRuntime* pop(const std::string& pop_id);
  std::vector<std::string> pop_ids() const;

  /// Attaches an approved experiment at a PoP: provisions the tunnel,
  /// registers the ADD-PATH session and enforcement grants, installs mux
  /// routes platform-wide, and returns the client-side handles.
  Result<ExperimentAttachment> attach_experiment(const std::string& exp_id,
                                                 const std::string& pop_id);

  /// Variant with an explicit attachment-link latency (used by colocated
  /// CloudLab sites, whose LAN hop replaces the Internet VPN tunnel).
  Result<ExperimentAttachment> attach_experiment(const std::string& exp_id,
                                                 const std::string& pop_id,
                                                 Duration link_latency);

  /// Re-establishes the BGP transport for an existing attachment (used by
  /// the toolkit's session start/stop); returns the new client-side stream.
  Result<std::shared_ptr<sim::StreamEndpoint>> reconnect_experiment(
      const ExperimentAttachment& attachment);

  /// Originates a route feed from a live neighbor (by index) at a PoP.
  Status feed_routes(const std::string& pop_id, std::size_t neighbor_index,
                     const std::vector<inet::FeedRoute>& feed);

  /// Originates a route feed from an IXP route-server member (by index).
  /// The routes reach the vBGP router via the transparent route server,
  /// with the member's fabric address as next-hop.
  Status feed_member_routes(const std::string& pop_id,
                            std::size_t member_index,
                            const std::vector<inet::FeedRoute>& feed);

  /// Re-applies an experiment's (possibly changed) grant at every PoP it
  /// is attached to, then uses ROUTE-REFRESH to re-evaluate the
  /// experiment's announcements under the new policy — no session resets
  /// (§5: configuration pushes do not disrupt running experiments).
  Status refresh_experiment(const std::string& exp_id);

  /// AS-wide policy support (§3.3): folds all PoPs' enforcement state
  /// stores together so per-prefix budgets apply across the platform.
  void sync_enforcement_state();

  /// Runs the event loop until BGP and routing converge.
  void settle(Duration d = Duration::seconds(10)) { loop_->run_for(d); }

  /// Platform-wide data-plane accounting: shared (deduplicated) vs flat
  /// (per-view-equivalent) FIB bytes summed over every PoP router.
  vbgp::FibAccounting fib_accounting() const;

  /// Looking-glass hook: renders a tenant's compiled state by id. Wired by
  /// the tenant orchestrator (the platform layer cannot depend on tenant/);
  /// null when no orchestrator is attached.
  using TenantReporter = std::function<std::string(const std::string&)>;
  void set_tenant_reporter(TenantReporter reporter) {
    tenant_reporter_ = std::move(reporter);
  }
  const TenantReporter& tenant_reporter() const { return tenant_reporter_; }

 private:
  void build_pop(const PopModel& model, std::uint8_t pop_index);
  void build_ixp_fabric(PopRuntime& pop, std::uint8_t pop_index);
  void build_backbone();

  sim::EventLoop* loop_;
  ConfigDatabase* db_;
  PeeringOptions options_;
  backbone::BackboneFabric fabric_;
  std::map<std::string, std::unique_ptr<PopRuntime>> pops_;
  std::map<std::string, std::uint8_t> pop_indexes_;
  std::vector<std::unique_ptr<sim::Link>> tunnels_;
  TenantReporter tenant_reporter_;
};

}  // namespace peering::platform
