#include "platform/internet_feed.h"

namespace peering::platform {

Result<InternetFeedStats> feed_from_internet(Peering& peering,
                                             const std::string& pop_id,
                                             const inet::Internet& internet) {
  PopRuntime* pop = peering.pop(pop_id);
  if (!pop) return Error("internet_feed: no such pop: " + pop_id);

  InternetFeedStats stats;
  for (std::size_t i = 0; i < pop->neighbors.size(); ++i) {
    auto& nb = pop->neighbors[i];
    if (!internet.graph.has_as(nb->model.asn)) continue;
    const bool is_transit =
        nb->model.type == InterconnectType::kTransit;

    std::vector<inet::FeedRoute> feed;
    for (const auto& [origin, prefix] : internet.prefixes) {
      auto routes = internet.graph.routes_to(origin);
      auto it = routes.find(nb->model.asn);
      if (it == routes.end()) continue;
      // Export policy: a transit (PEERING is its customer) exports every
      // route; a peer exports only customer routes (its cone).
      if (!is_transit && it->second.type != inet::RouteType::kCustomer)
        continue;
      inet::FeedRoute route;
      route.prefix = prefix;
      std::vector<bgp::Asn> path = it->second.path;
      if (path.empty() || path.back() != origin) path.push_back(origin);
      route.attrs.as_path = bgp::AsPath(path);
      feed.push_back(std::move(route));
    }
    if (feed.empty()) continue;
    if (auto st = peering.feed_routes(pop_id, i, feed); !st) return st.error();
    ++stats.neighbors_fed;
    stats.routes_fed += feed.size();
  }
  return stats;
}

}  // namespace peering::platform
