// Intent-based configuration generation (§5): transforms the central
// PlatformModel into the per-service artifacts a PoP runs — the BIRD-style
// router configuration (which exceeds 10,000 lines at large PoPs), the
// OpenVPN server configuration, the enforcement-engine configuration, and
// the DesiredNetworkState handed to the network controller.
#pragma once

#include <string>

#include "platform/controller.h"
#include "platform/model.h"

namespace peering::platform {

struct GeneratedConfigs {
  std::string bird_config;
  std::string openvpn_config;
  std::string enforcer_config;
  DesiredNetworkState network;

  std::size_t bird_line_count() const;
};

/// Generates every service configuration for one PoP from the model.
/// Deterministic: equal models yield byte-identical configs (the property
/// that makes canarying and version-control diffs meaningful).
GeneratedConfigs generate_pop_configs(const PlatformModel& model,
                                      const std::string& pop_id);

}  // namespace peering::platform
