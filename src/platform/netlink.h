// A simulated Linux Netlink interface: the request/response API the
// network controller programs (§5). Deliberately mirrors the real
// constraints the paper calls out: no intent expression (only queries,
// adds, and removes), no transactions, and no way to change an interface's
// primary address except by removing and re-adding addresses in order.
// Supports failure injection for transaction/rollback tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "netbase/result.h"

namespace peering::platform {

struct NlAddress {
  Ipv4Address address;
  std::uint8_t prefix_length = 24;
  bool operator==(const NlAddress&) const = default;
};

struct NlInterface {
  std::string name;
  bool up = false;
  /// Ordered: the first address is the primary (used for ICMP sourcing).
  std::vector<NlAddress> addresses;
  bool operator==(const NlInterface&) const = default;
};

struct NlRoute {
  Ipv4Prefix prefix;
  Ipv4Address gateway;
  std::string interface;
  /// Routing table id (vBGP keeps one table per neighbor).
  std::uint32_t table = 254;  // RT_TABLE_MAIN
  auto operator<=>(const NlRoute&) const = default;
};

/// An ip-rule-style policy rule: frames matching `selector` (we use the
/// destination-MAC string of a virtual neighbor) look up `table`.
struct NlRule {
  std::uint32_t priority = 0;
  std::string selector;
  std::uint32_t table = 254;
  auto operator<=>(const NlRule&) const = default;
};

class NetlinkSim {
 public:
  // -- mutations (each counts toward failure injection) --
  Status create_interface(const std::string& name);
  Status delete_interface(const std::string& name);
  Status set_link_up(const std::string& name, bool up);
  /// Appends an address; the first added is the primary.
  Status add_address(const std::string& ifname, NlAddress address);
  Status remove_address(const std::string& ifname, Ipv4Address address);
  Status add_route(const NlRoute& route);
  Status remove_route(const NlRoute& route);
  Status add_rule(const NlRule& rule);
  Status remove_rule(const NlRule& rule);

  // -- queries (never fail) --
  std::vector<NlInterface> interfaces() const;
  std::optional<NlInterface> interface(const std::string& name) const;
  std::vector<NlRoute> routes() const { return {routes_.begin(), routes_.end()}; }
  std::vector<NlRule> rules() const { return {rules_.begin(), rules_.end()}; }

  /// Failure injection: the `n`-th subsequent mutation fails (1-based);
  /// later mutations succeed again.
  void fail_nth_mutation(int n) { fail_at_.insert(mutations_ + n); }
  /// Arms several failures at once (offsets relative to the current
  /// mutation count, 1-based). Lets tests make a rollback's own undo
  /// mutations fail — fail_nth_mutation cannot be re-armed mid-apply.
  void fail_mutations_at(const std::set<int>& offsets) {
    for (int n : offsets) fail_at_.insert(mutations_ + n);
  }
  std::uint64_t mutation_count() const { return mutations_; }

 private:
  Status count_mutation();

  std::map<std::string, NlInterface> interfaces_;
  std::set<NlRoute> routes_;
  std::set<NlRule> rules_;
  std::uint64_t mutations_ = 0;
  std::set<std::uint64_t> fail_at_;
};

}  // namespace peering::platform
