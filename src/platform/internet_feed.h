// Feeds the platform's live neighbors from a synthetic Internet: each
// neighbor advertises, with correct Gao-Rexford export policy, the routes
// it would really offer — a transit provider exports its full table, a
// settlement-free peer only its customer cone (§4.2: "ASes in the customer
// cones of our peers receive announcements made by experiments to peers").
#pragma once

#include <map>

#include "inet/topology.h"
#include "platform/peering.h"

namespace peering::platform {

struct InternetFeedStats {
  std::size_t neighbors_fed = 0;
  std::size_t routes_fed = 0;
};

/// For every live neighbor at `pop_id` whose ASN exists in `internet`'s
/// graph, originates one route per stub prefix the neighbor would export
/// to PEERING (full table for transits; customer-cone routes for peers),
/// with the AS path the graph computes.
Result<InternetFeedStats> feed_from_internet(Peering& peering,
                                             const std::string& pop_id,
                                             const inet::Internet& internet);

}  // namespace peering::platform
