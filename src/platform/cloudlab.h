// CloudLab federation (§4.3.2): bare-metal compute sites colocated with
// PEERING PoPs. "Combined, Peering and CloudLab provide experiments with
// edge PoPs, a backbone, and compute resources" — and, per §7.4,
// "experiments desiring low latency can deploy on (and tunnel from)
// CloudLab": the site link to the colocated PoP is orders of magnitude
// faster than an OpenVPN tunnel across the Internet.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ip/host.h"
#include "platform/peering.h"

namespace peering::platform {

/// One bare-metal node allocated to an experiment.
struct CloudLabNode {
  std::string id;
  std::unique_ptr<ip::Host> host;
  std::unique_ptr<sim::Link> link;  // node <-> site switch
  Ipv4Address address;
};

/// A CloudLab site colocated with a PoP: a node LAN bridged to the PoP's
/// vBGP router over a short local link.
class CloudLabSite {
 public:
  /// Builds the site and wires it to `pop_id`'s router. `site_latency` is
  /// the LAN hop to the colocated PoP (microseconds, not the tens of
  /// milliseconds an Internet VPN tunnel costs).
  static Result<std::unique_ptr<CloudLabSite>> create(
      Peering& peering, const std::string& pop_id, const std::string& site_id,
      Duration site_latency = Duration::micros(100));

  const std::string& site_id() const { return site_id_; }
  const std::string& pop_id() const { return pop_id_; }

  /// Allocates a bare-metal node for an experiment. The node's host stack
  /// is the experiment's to use directly.
  CloudLabNode& allocate_node(const std::string& node_id);

  /// Attaches an approved experiment from a node at this site: like
  /// Peering::attach_experiment but over the site link instead of a VPN
  /// tunnel. The node's host gains the allocation address and the
  /// BGP transport; the caller wires its speaker to the returned stream.
  Result<ExperimentAttachment> attach_experiment(const std::string& exp_id,
                                                 CloudLabNode& node);

  std::size_t node_count() const { return nodes_.size(); }

 private:
  CloudLabSite() = default;

  Peering* peering_ = nullptr;
  std::string site_id_;
  std::string pop_id_;
  Duration site_latency_;
  std::vector<std::unique_ptr<CloudLabNode>> nodes_;
  std::uint8_t next_node_ = 1;
};

}  // namespace peering::platform
