// PEERING's deployed footprint as of the paper (§4.2): thirteen PoPs on
// three continents — four at IXPs, nine at universities — 12 transit
// providers, 923 unique peers (129 bilateral, the rest via route servers),
// and the PeeringDB peer-type mix. build_footprint() materializes this as a
// PlatformModel with synthetic neighbor ASNs.
#pragma once

#include "netbase/rand.h"
#include "platform/model.h"

namespace peering::platform {

struct FootprintPopSpec {
  const char* id;
  const char* location;
  PopType type;
  /// Bilateral peers at this PoP (§4.2: 106 at AMS-IX, 63 at Seattle-IX,
  /// 10 at Phoenix-IX, 6 at IX.br/MG).
  int bilateral_peers;
  /// Peers reachable via the IXP route servers (854 total at AMS-IX, etc.).
  int route_server_peers;
  int transits;
  bool on_backbone;
  std::uint64_t bandwidth_limit_bps;
};

/// The thirteen-PoP deployment. Counts follow §4.2; university PoPs have a
/// single transit interconnection with the host institution.
const std::vector<FootprintPopSpec>& footprint_pops();

/// Peer-type shares reported from PeeringDB (§4.2).
struct PeerTypeMix {
  double transit_provider = 0.33;
  double access_isp = 0.28;
  double content = 0.23;
  double unclassified = 0.08;
  double other = 0.08;  // education/research, enterprise, non-profit, RS
};

/// Builds the full PlatformModel for the deployment: every PoP with its
/// interconnects (synthetic neighbor ASNs, globally unique ids), numbered
/// resources, and no experiments.
PlatformModel build_footprint(std::uint64_t seed = 1);

/// Summary statistics used by the footprint report example and tests.
struct FootprintSummary {
  std::size_t pop_count = 0;
  std::size_t ixp_pops = 0;
  std::size_t university_pops = 0;
  std::size_t transit_interconnects = 0;
  std::size_t bilateral_peers = 0;
  std::size_t route_server_peers = 0;
  std::size_t unique_peers = 0;
};

FootprintSummary summarize(const PlatformModel& model);

}  // namespace peering::platform
