#include "platform/namespaces.h"

namespace peering::platform {

Status NamespaceManager::create(const std::string& name) {
  if (name.empty()) return Error("namespace: empty name");
  if (namespaces_.count(name))
    return Error("namespace: already exists: " + name);
  namespaces_[name] = std::make_unique<NetlinkSim>();
  return Status::Ok();
}

Status NamespaceManager::destroy(const std::string& name) {
  if (name == "host") return Error("namespace: cannot destroy host");
  if (!namespaces_.erase(name))
    return Error("namespace: no such namespace: " + name);
  return Status::Ok();
}

Status NamespaceManager::reset(const std::string& name) {
  if (name == "host") return Error("namespace: cannot reset host");
  auto it = namespaces_.find(name);
  if (it == namespaces_.end())
    return Error("namespace: no such namespace: " + name);
  it->second = std::make_unique<NetlinkSim>();
  return Status::Ok();
}

std::vector<std::string> NamespaceManager::names() const {
  std::vector<std::string> out;
  for (const auto& [name, ns] : namespaces_) out.push_back(name);
  return out;
}

NetlinkSim* NamespaceManager::netlink(const std::string& name) {
  auto it = namespaces_.find(name);
  return it == namespaces_.end() ? nullptr : it->second.get();
}

ApplyResult IsolatedService::start(const DesiredNetworkState& desired) {
  if (!manager_->exists(namespace_)) {
    if (auto st = manager_->create(namespace_); !st) {
      ApplyResult result;
      result.error = st.error().message;
      return result;
    }
  }
  NetworkController controller(manager_->netlink(namespace_));
  return controller.apply(desired);
}

ApplyResult IsolatedService::recover(const DesiredNetworkState& desired) {
  if (auto st = manager_->reset(namespace_); !st) {
    ApplyResult result;
    result.error = st.error().message;
    return result;
  }
  NetworkController controller(manager_->netlink(namespace_));
  return controller.apply(desired);
}

Status IsolatedService::stop() { return manager_->destroy(namespace_); }

}  // namespace peering::platform
