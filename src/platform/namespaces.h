// Container network-namespace isolation (§5 "Standardization and
// Isolation"): vBGP's services configure an isolated network namespace, so
// configuration errors, software bugs, or failures cannot wedge the host's
// own networking stack and lock the operators out of in-band access. The
// namespace can be torn down and rebuilt from intent at any time without
// touching the host namespace.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/controller.h"
#include "platform/netlink.h"

namespace peering::platform {

/// A set of isolated network namespaces on one server, each with its own
/// netlink state. The "host" namespace always exists.
class NamespaceManager {
 public:
  NamespaceManager() { namespaces_["host"] = std::make_unique<NetlinkSim>(); }

  /// Creates a named namespace (fails if it exists).
  Status create(const std::string& name);

  /// Destroys a namespace and everything configured inside it. The host
  /// namespace cannot be destroyed.
  Status destroy(const std::string& name);

  /// Resets a namespace to empty (the "reset the state of the namespace if
  /// needed" escape hatch). The host namespace cannot be reset.
  Status reset(const std::string& name);

  bool exists(const std::string& name) const {
    return namespaces_.count(name) > 0;
  }
  std::vector<std::string> names() const;

  /// The netlink handle scoped to one namespace.
  NetlinkSim* netlink(const std::string& name);

 private:
  std::map<std::string, std::unique_ptr<NetlinkSim>> namespaces_;
};

/// One containerized service deployment: a namespace plus the network
/// controller that reconciles it with intent.
class IsolatedService {
 public:
  IsolatedService(NamespaceManager* manager, std::string namespace_name)
      : manager_(manager), namespace_(std::move(namespace_name)) {}

  /// Creates the namespace (if needed) and applies the desired state.
  ApplyResult start(const DesiredNetworkState& desired);

  /// Rebuild-from-scratch recovery: reset the namespace and re-apply.
  ApplyResult recover(const DesiredNetworkState& desired);

  /// Tears the namespace down.
  Status stop();

  const std::string& namespace_name() const { return namespace_; }

 private:
  NamespaceManager* manager_;
  std::string namespace_;
};

}  // namespace peering::platform
