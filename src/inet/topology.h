// Synthetic AS-level Internet: relationship graph (customer-provider and
// settlement-free peering), valley-free (Gao–Rexford) route propagation,
// and customer cones. This is the stand-in for the real routing ecosystem
// PEERING connects to: neighbor ASes at PoPs advertise the routes this
// model says they would, with correct export policies (a transit provider
// exports everything, a peer exports only its customer cone, §4.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "netbase/prefix.h"
#include "netbase/rand.h"

namespace peering::inet {

enum class RouteType : std::uint8_t {
  kNone = 0,
  /// Learned from a customer (most preferred; exported to everyone).
  kCustomer = 3,
  /// Learned from a settlement-free peer (exported to customers only).
  kPeer = 2,
  /// Learned from a provider (least preferred; exported to customers only).
  kProvider = 1,
};

struct AsRoute {
  RouteType type = RouteType::kNone;
  /// AS path from this AS to the origin (first = next AS, last = origin).
  std::vector<bgp::Asn> path;

  bool valid() const { return type != RouteType::kNone; }
};

class AsGraph {
 public:
  void add_as(bgp::Asn asn) { ases_.insert(asn); }
  bool has_as(bgp::Asn asn) const { return ases_.count(asn) > 0; }
  std::size_t as_count() const { return ases_.size(); }
  const std::set<bgp::Asn>& ases() const { return ases_; }

  /// Declares `provider` to transit for `customer`.
  void add_provider(bgp::Asn customer, bgp::Asn provider);
  /// Declares a settlement-free peering between a and b.
  void add_peering(bgp::Asn a, bgp::Asn b);

  const std::vector<bgp::Asn>& providers(bgp::Asn asn) const;
  const std::vector<bgp::Asn>& customers(bgp::Asn asn) const;
  const std::vector<bgp::Asn>& peers(bgp::Asn asn) const;

  /// The customer cone of `asn`: itself plus every AS reachable by
  /// following customer edges down (§4.2 uses cones to reason about the
  /// reach of peer announcements).
  std::set<bgp::Asn> customer_cone(bgp::Asn asn) const;

  /// Gao–Rexford route computation: the route every AS selects toward
  /// `origin`, honoring export rules (customer routes are exported to all;
  /// peer/provider routes only to customers) and the standard preference
  /// customer > peer > provider, then shortest path.
  std::map<bgp::Asn, AsRoute> routes_to(bgp::Asn origin) const;

  /// True iff every AS with any route has a valley-free path (diagnostic).
  static bool path_is_valley_free(const AsGraph& graph,
                                  const std::vector<bgp::Asn>& path,
                                  bgp::Asn origin);

 private:
  std::set<bgp::Asn> ases_;
  std::map<bgp::Asn, std::vector<bgp::Asn>> providers_;
  std::map<bgp::Asn, std::vector<bgp::Asn>> customers_;
  std::map<bgp::Asn, std::vector<bgp::Asn>> peers_;
  static const std::vector<bgp::Asn> kEmpty;
};

/// Parameters for the synthetic Internet generator.
struct InternetConfig {
  int tier1_count = 6;        // fully meshed clique at the top
  int tier2_count = 30;       // regional transit: customers of 2-3 tier-1s
  int stub_count = 200;       // edge networks: customers of 1-3 tier-2s
  double tier2_peering_prob = 0.3;
  std::uint64_t seed = 1;
  bgp::Asn first_asn = 100;
};

struct Internet {
  AsGraph graph;
  std::vector<bgp::Asn> tier1, tier2, stubs;
  /// One /24 per stub AS (the destinations experiments probe).
  std::map<bgp::Asn, Ipv4Prefix> prefixes;
};

/// Deterministically generates a three-tier Internet.
Internet generate_internet(const InternetConfig& config);

}  // namespace peering::inet
