// Synthetic route feeds at Internet scale. The Figure 6 evaluations need
// millions of routes and thousands of updates per second with realistic
// attribute shapes (path lengths, communities, churn); building a
// million-AS graph is unnecessary — this generator produces statistically
// plausible feeds deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/prefix.h"
#include "netbase/rand.h"

namespace peering::inet {

struct FeedRoute {
  Ipv4Prefix prefix;
  bgp::PathAttributes attrs;
};

struct RouteFeedConfig {
  std::size_t route_count = 100'000;
  /// Simulated advertising neighbor's ASN (first hop of every path).
  bgp::Asn neighbor_asn = 65001;
  /// Mean additional AS-path length beyond the neighbor (observed Internet
  /// mean is ~3.5-4.5 hops).
  double mean_path_tail = 3.5;
  /// Probability a route carries 1-4 communities.
  double community_prob = 0.4;
  /// Number of distinct attribute sets in the feed. Real tables share
  /// attribute sets heavily (many prefixes per AS path); route attributes
  /// are drawn from a pool of this many templates. 0 = route_count / 20.
  std::size_t attribute_templates = 0;
  std::uint64_t seed = 1;
};

/// Generates `route_count` distinct prefixes with plausible attributes.
std::vector<FeedRoute> generate_feed(const RouteFeedConfig& config);

/// Generates an update stream over an existing feed: each event re-announces
/// a random route with perturbed attributes (MED churn), modelling the
/// "background noise" of interdomain routing.
std::vector<FeedRoute> generate_churn(const std::vector<FeedRoute>& feed,
                                      std::size_t update_count,
                                      std::uint64_t seed);

}  // namespace peering::inet
