// Synthetic route feeds at Internet scale. The Figure 6 evaluations need
// millions of routes and thousands of updates per second with realistic
// attribute shapes (path lengths, communities, churn); building a
// million-AS graph is unnecessary — this generator produces statistically
// plausible feeds deterministically.
//
// Two generators live here:
//  * generate_feed — the original flat template-pool feed (kept byte-stable:
//    several benches gate exact metrics derived from its RNG stream);
//  * generate_full_table — the internet-scale model (ISSUE 10): realistic
//    prefix-length mix, Zipf-like prefixes-per-origin, path-length and
//    community-carriage distributions grounded in the PAPERS.md community
//    usage measurements, and heavy per-origin attribute sharing.
// Plus two churn engines: generate_churn (a flat update stream with MED
// re-announces, withdrawals, and matching re-announces) and
// generate_churn_schedule (a timed schedule of beacon waves, flap storms
// and background noise for the internet-scale soak).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/prefix.h"
#include "netbase/rand.h"
#include "netbase/time.h"

namespace peering::inet {

struct FeedRoute {
  Ipv4Prefix prefix;
  bgp::PathAttributes attrs;
  /// Set only in churn streams: this event removes the prefix instead of
  /// (re-)announcing it. `attrs` are meaningless for withdrawals.
  bool withdraw = false;
};

struct RouteFeedConfig {
  std::size_t route_count = 100'000;
  /// Simulated advertising neighbor's ASN (first hop of every path).
  bgp::Asn neighbor_asn = 65001;
  /// Mean additional AS-path length beyond the neighbor (observed Internet
  /// mean is ~3.5-4.5 hops).
  double mean_path_tail = 3.5;
  /// Probability a route carries 1-4 communities.
  double community_prob = 0.4;
  /// Number of distinct attribute sets in the feed. Real tables share
  /// attribute sets heavily (many prefixes per AS path); route attributes
  /// are drawn from a pool of this many templates. 0 = route_count / 20.
  std::size_t attribute_templates = 0;
  std::uint64_t seed = 1;
};

/// Generates `route_count` distinct prefixes with plausible attributes.
std::vector<FeedRoute> generate_feed(const RouteFeedConfig& config);

/// Generates an update stream over an existing feed. Three event kinds,
/// chosen per event from the seeded stream: a withdrawal of a currently
/// announced route, a re-announcement of a previously withdrawn route with
/// its ORIGINAL attributes (so withdraw -> re-announce round-trips to
/// byte-identical state), or an attribute perturbation (MED step, sometimes
/// a path prepend) — the "background noise" of interdomain routing.
std::vector<FeedRoute> generate_churn(const std::vector<FeedRoute>& feed,
                                      std::size_t update_count,
                                      std::uint64_t seed);

// ---------------------------------------------------------------------------
// Internet-scale full-table model (ISSUE 10 tentpole).

/// One row of the specific-prefix length model: P(prefix length == length).
struct LengthShare {
  std::uint8_t length;
  double share;
};

/// The generator's specific-prefix (length >= 18) model, RouteViews-shaped:
/// ~62% /24 with the familiar /22 and /20 bumps. Exposed so distribution
/// tests chi-square the generated histogram against the same table the
/// generator draws from. Aggregates (see FullTableConfig::aggregate_prob)
/// are strictly shorter than /18, so the two populations are separable by
/// length alone.
const std::vector<LengthShare>& full_table_length_model();

struct FullTableConfig {
  std::size_t route_count = 1'000'000;
  /// Simulated advertising neighbor's ASN (first hop of every path).
  bgp::Asn neighbor_asn = 65001;
  /// Next hop of every route (a single-neighbor full feed shares one).
  Ipv4Address next_hop = Ipv4Address(10, 0, 0, 1);
  /// Mean prefixes per origin AS; per-origin counts are Zipf-like (1/rank),
  /// capped at 3000, so a heavy head of large origins carries a large share
  /// of the table, like the real one.
  double mean_prefixes_per_origin = 13.0;
  /// Mean AS-path length in hops, neighbor and origin included. Grounded in
  /// the ~4.2 mean the measurement studies report.
  double mean_path_length = 4.2;
  /// Fraction of routes carrying >= 1 community. The community-usage
  /// studies (Krenc et al., Streibelt et al.) put carriage at ~75% of
  /// announcements, with a small set of popular values dominating.
  double community_carriage = 0.75;
  /// Mean communities per carrying route (geometric, capped at 16).
  double mean_communities = 3.2;
  /// Probability an origin with >= 4 prefixes also announces the covering
  /// aggregate (atomic-aggregate flagged, length <= /17).
  double aggregate_prob = 0.5;
  std::uint64_t seed = 1;
};

struct FullTableStats {
  std::size_t origin_count = 0;
  std::size_t specific_routes = 0;
  std::size_t aggregate_routes = 0;
  /// Distinct attribute sets created (the attr-pool dedup ceiling).
  std::size_t distinct_attr_sets = 0;
};

/// Generates a full-table feed per FullTableConfig. Prefixes are unique;
/// each origin's specifics are carved from one contiguous block which the
/// origin's optional aggregate covers, so more-specifics nest inside
/// aggregates the way real tables do. Byte-identical per seed.
std::vector<FeedRoute> generate_full_table(const FullTableConfig& config,
                                           FullTableStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Timed churn schedule (ISSUE 10 tentpole): BGP-beacon announce/withdraw
// waves, prefix flap storms, and steady background noise over a simulated
// interval. The schedule is "closed": the final event for every touched
// route re-announces its original feed attributes, so a fully replayed +
// settled schedule converges back to exactly the original table — the
// property the soak's fresh-converged-reference self-check relies on.

enum class ChurnKind : std::uint8_t { kAnnounce = 0, kWithdraw = 1 };

struct ChurnEvent {
  /// Offset from schedule start.
  Duration at;
  /// Index into the feed the schedule was generated for.
  std::uint32_t route = 0;
  ChurnKind kind = ChurnKind::kAnnounce;
  /// Attribute variant for announces: 0 replays the original feed
  /// attributes byte-identically; 1..3 are MED steps (variant * 10).
  std::uint8_t variant = 0;
};

struct ChurnScheduleConfig {
  Duration duration = Duration::hours(1);
  /// BGP-beacon cadence: every interval, `beacon_set` fixed routes withdraw,
  /// re-announcing half an interval later (RIS-beacon style, scaled down).
  Duration beacon_interval = Duration::minutes(10);
  std::size_t beacon_set = 64;
  /// Flap storms: bursts in which `storm_set` routes withdraw/re-announce
  /// `storm_flaps` times in quick succession. The soak composes these with
  /// src/faults session flaps at the same seeded instants.
  std::size_t storm_count = 4;
  std::size_t storm_set = 256;
  std::size_t storm_flaps = 3;
  Duration storm_flap_gap = Duration::seconds(2);
  /// Background noise: mean perturbation events per simulated second
  /// (uniform-jittered arrivals; mostly MED steps, some flaps).
  double background_rate_hz = 20.0;
  std::uint64_t seed = 1;
};

struct ChurnSchedule {
  /// Ascending by `at`; ties keep generation order. Byte-identical per
  /// (feed size, config).
  std::vector<ChurnEvent> events;
  std::size_t announces = 0;
  std::size_t withdraws = 0;
  /// When the closure pass re-announces routes left perturbed (all restore
  /// events sit after `duration`).
  Duration end = Duration();

  /// One line per event ("<ns> A|W <route> v<variant>"): the byte-identity
  /// artifact determinism tests compare.
  std::string log() const;
};

ChurnSchedule generate_churn_schedule(std::size_t feed_size,
                                      const ChurnScheduleConfig& config);

/// Materializes one schedule event against its feed: a withdrawal, the
/// original route (variant 0), or a MED-stepped copy. Pure, so every
/// harness replaying the same schedule injects byte-identical updates.
FeedRoute churn_event_route(const std::vector<FeedRoute>& feed,
                            const ChurnEvent& event);

}  // namespace peering::inet
