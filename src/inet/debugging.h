// Appendix A: debugging route propagation. PEERING announcements sometimes
// fail to reach parts of the Internet because some network's import or
// export filters are out of date; localizing the filter is manual work
// with looking glasses, and — as the appendix points out — even adjacent
// looking glasses cannot disambiguate "A did not export to B" from
// "B filtered the route from A". This module models exactly that problem:
//
//   * filtered route propagation: Gao-Rexford routing with a set of
//     blocked (exporter -> importer) edges;
//   * looking glasses: a restricted has-route/show-path view at a subset
//     of ASes;
//   * a debugger that, from looking-glass observations alone, produces the
//     candidate set of filtering edges (the paper's planned "automated
//     filter troubleshooting" future work).
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "inet/topology.h"

namespace peering::inet {

/// A directed filtered adjacency: routes for the studied prefix are not
/// passed from `exporter` to `importer` (covers both "exporter does not
/// export" and "importer filters on import" — indistinguishable from
/// outside, which is the point).
using FilteredEdge = std::pair<bgp::Asn, bgp::Asn>;

/// Gao-Rexford propagation with blocked edges.
std::map<bgp::Asn, AsRoute> routes_to_filtered(
    const AsGraph& graph, bgp::Asn origin,
    const std::set<FilteredEdge>& blocked);

/// A looking glass: query interface limited to a subset of ASes ("they
/// only provide a restricted command line interface").
class LookingGlassSet {
 public:
  LookingGlassSet(const std::map<bgp::Asn, AsRoute>& ground_truth,
                  std::set<bgp::Asn> available)
      : routes_(&ground_truth), available_(std::move(available)) {}

  bool has_looking_glass(bgp::Asn asn) const {
    return available_.count(asn) > 0;
  }

  /// "show route": nullopt if no looking glass at `asn`; an invalid route
  /// if the AS has no route.
  std::optional<AsRoute> query(bgp::Asn asn) const {
    if (!has_looking_glass(asn)) return std::nullopt;
    auto it = routes_->find(asn);
    if (it == routes_->end()) return AsRoute{};
    return it->second;
  }

  const std::set<bgp::Asn>& available() const { return available_; }

 private:
  const std::map<bgp::Asn, AsRoute>* routes_;
  std::set<bgp::Asn> available_;
};

struct FilterDiagnosis {
  /// Edges (exporter, importer) where a looking glass shows the exporter
  /// holding the route and an adjacent looking glass shows the importer
  /// without one, even though propagation rules say it should have been
  /// passed. Each is a candidate filter; the pair cannot be split further
  /// from looking-glass data alone (Appendix A).
  std::vector<FilteredEdge> suspects;
  /// ASes without a route whose upstreams are all unobservable — the
  /// debugging dead ends that "usually require emailing our transit
  /// providers".
  std::vector<bgp::Asn> unexplained;
};

/// Localizes filters from looking-glass observations: for every adjacent
/// (exporter, importer) pair where export *should* happen under
/// Gao-Rexford rules, flag the edge if the exporter demonstrably has the
/// route and the importer demonstrably lacks one.
FilterDiagnosis locate_filters(const AsGraph& graph, bgp::Asn origin,
                               const LookingGlassSet& glasses);

}  // namespace peering::inet
