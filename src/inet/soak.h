// Internet-scale soak harness (ISSUE 10 tentpole): a full synthetic
// Internet table replayed into a multi-PoP backbone fabric, then churned
// continuously for a simulated interval — BGP-beacon waves, prefix flap
// storms (optionally composed with src/faults backbone session flaps), and
// steady background noise — with the monitoring plane attached end to end.
//
// One SoakHarness is one self-contained world: its own obs::Registry (and
// Scope), event loop, vBGP routers, backbone mesh, fault injector, feed
// speaker, per-PoP monitor sessions, station, and propagation tracer. Two
// harnesses with the same config and feed are byte-identical worlds, which
// is the whole point:
//
//  * the soak bench runs one harness with churn and one reference harness
//    without, lets both settle, and proves via
//    faults::InvariantChecker::diff_locrib that the churned world converged
//    back to exactly the fresh-converged table (the schedule is closed —
//    see inet::generate_churn_schedule);
//  * the determinism test runs the same world at pipeline shapes {1,0} and
//    {4,4} and compares Loc-RIB fingerprints, monitor-stream hashes, fault
//    schedules, and churn logs byte for byte.
//
// Scale notes: the harness never renders the full table as text. Loc-RIB
// fingerprints are streaming FNV-1a over canonical attribute encodings in
// ascending prefix order (shard-count independent, see bgp::LocRib), and
// monitor fingerprints hash each session's bounded binary stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backbone/fabric.h"
#include "bgp/speaker.h"
#include "faults/injector.h"
#include "inet/route_feed.h"
#include "mon/monitor.h"
#include "mon/propagation.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "vbgp/vrouter.h"

namespace peering::soak {

struct SoakConfig {
  /// PoP identifiers; [0] hosts the feed neighbor. Size >= 2. The bench
  /// passes the platform's 13-PoP footprint; tests pass 3.
  std::vector<std::string> pops;
  inet::FullTableConfig table;
  inet::ChurnScheduleConfig churn;
  /// Pipeline shape of every router's embedded speaker.
  bgp::PipelineConfig pipeline;
  /// MRAI armed on every backbone iBGP session (both ends) — the batching
  /// knob the soak's flush-efficiency gate measures.
  Duration backbone_mrai = Duration::millis(200);
  /// Wall given to session establishment before injection starts.
  Duration establish = Duration::seconds(10);
  /// Quiescence window for settle(): converged means one full window with
  /// no update traffic anywhere (see faults::FaultInjector::await_quiescence).
  Duration settle_window = Duration::seconds(5);
  int settle_max_windows = 400;
  /// Routes staged per drain_pipeline() during the initial table load; the
  /// loop runs briefly between batches so MRAI flushes interleave with
  /// injection the way arrival does on a real wire.
  std::size_t inject_batch = 4096;
  /// Backbone session flaps composed with the churn window (0 = none).
  /// Deterministically placed at fractions of churn.duration, alternating
  /// graceful CEASE and abrupt TCP reset.
  int session_flaps = 0;
  Duration session_flap_down = Duration::seconds(5);
  std::uint64_t fault_seed = 42;
  /// The reference harness sets this false: same world, no churn, no
  /// flaps — the fresh-converged table diff_locrib compares against.
  bool churn_enabled = true;
};

/// Derived, snapshot-backed results of one run().
struct SoakReport {
  std::size_t routes = 0;
  std::size_t pops = 0;
  bool converged_initial = false;
  bool converged_post_churn = true;  // stays true when churn is disabled
  std::size_t churn_events = 0;
  std::size_t churn_announces = 0;
  std::size_t churn_withdraws = 0;
  std::uint64_t faults_scheduled = 0;
  /// Propagation: time-to-Loc-RIB over every (stamped prefix, observing
  /// speaker) pair, and time-to-FIB over every observing router.
  std::uint64_t locrib_samples = 0;
  std::uint64_t fib_samples = 0;
  std::uint64_t ttl_p50_ns = 0;
  std::uint64_t ttl_p99_ns = 0;
  std::uint64_t ttf_p99_ns = 0;
  /// MRAI batching across every speaker. A "flush" is one drain event (one
  /// timer fire serving every due peer at that instant); peer_flushes is
  /// the total member flushes those events carried. The mean — peers
  /// coalesced per drain event — is the batching efficiency the bench
  /// gates (floor): it collapses toward 1.0 if flush instants stop being
  /// shared.
  std::uint64_t mrai_flushes = 0;
  std::uint64_t mrai_peer_flushes = 0;
  double mrai_batch_mean = 0.0;
  std::uint64_t updates_out = 0;
  std::uint64_t full_resyncs = 0;
  std::uint64_t export_log_depth_p99 = 0;
  std::uint64_t monitor_records = 0;
  std::uint64_t monitor_dropped = 0;
  /// Memory floor: every speaker's RIB/pool accounting plus every router's
  /// shared-FIB accounting (Figure 6a's quantity, at soak scale).
  std::size_t rib_memory_bytes = 0;
  std::size_t fib_memory_bytes = 0;
};

class SoakHarness {
 public:
  /// `feed` must outlive the harness (the bench generates it once and
  /// shares it with the reference harness). `schedule` may be null, in
  /// which case the harness generates its own from (feed size, config
  /// churn) — passing one avoids regenerating it per harness.
  SoakHarness(SoakConfig config, const std::vector<inet::FeedRoute>* feed,
              const inet::ChurnSchedule* schedule = nullptr);
  ~SoakHarness();

  SoakHarness(const SoakHarness&) = delete;
  SoakHarness& operator=(const SoakHarness&) = delete;

  /// establish + inject_table + settle [+ replay_churn + settle].
  void run();

  // Individual phases, public so tests can interleave their own checks.
  void establish();
  void inject_table();
  /// Runs until one full settle_window passes with no update traffic.
  bool settle();
  void replay_churn();

  const SoakConfig& config() const { return config_; }
  const std::vector<inet::FeedRoute>& feed() const { return *feed_; }
  const inet::ChurnSchedule& schedule() const { return *schedule_; }
  const std::string& fault_log() const { return injector_->schedule_log(); }

  sim::EventLoop& loop() { return loop_; }
  obs::Registry& registry() { return registry_; }
  mon::PropagationTracer& tracer() { return tracer_; }
  const mon::MonitoringStation& station() const { return station_; }

  std::size_t pop_count() const { return routers_.size(); }
  vbgp::VRouter& router(std::size_t pop) { return *routers_[pop]; }
  const bgp::BgpSpeaker& speaker(std::size_t pop) const {
    return const_cast<vbgp::VRouter&>(*routers_[pop]).speaker();
  }

  /// Established backbone + feed sessions (for liveness assertions).
  std::size_t established_sessions() const;

  /// Streaming FNV-1a over one PoP's Loc-RIB: every candidate and every
  /// best path in ascending prefix order, attribute content included via
  /// the canonical 4-byte-ASN wire encoding. Pipeline-shape independent.
  std::uint64_t locrib_fingerprint(std::size_t pop) const;
  /// All PoPs' fingerprints mixed in PoP order.
  std::uint64_t locrib_fingerprint() const;
  /// FNV-1a over each monitor session's binary stream + drop counters +
  /// the station's arrival tally, in PoP order.
  std::uint64_t monitor_fingerprint() const;

  /// Snapshot-derived metrics; call after run().
  SoakReport report() const;

 private:
  void build();
  void inject_event(const inet::ChurnEvent& event);
  std::vector<bgp::BgpSpeaker*> all_speakers();

  SoakConfig config_;
  const std::vector<inet::FeedRoute>* feed_;
  inet::ChurnSchedule owned_schedule_;
  const inet::ChurnSchedule* schedule_;

  // Construction (and destruction) order matters: the registry + scope
  // must exist before anything that resolves obs handles; monitors detach
  // before their speakers die (declared after routers_, destroyed first).
  obs::Registry registry_{true};
  obs::Scope scope_{&registry_};
  sim::EventLoop loop_;
  std::vector<std::unique_ptr<vbgp::VRouter>> routers_;
  std::unique_ptr<backbone::BackboneFabric> fabric_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<bgp::BgpSpeaker> feeder_;
  bgp::PeerId feeder_peer_ = 0;  // on feeder_, toward routers_[0]
  bgp::PeerId feed_peer_ = 0;    // on routers_[0], toward feeder_
  mon::PropagationTracer tracer_;
  mon::MonitoringStation station_;
  std::vector<std::unique_ptr<mon::MonitorSession>> monitors_;

  bool converged_initial_ = false;
  bool converged_post_churn_ = true;
};

}  // namespace peering::soak
