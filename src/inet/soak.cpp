#include "inet/soak.h"

#include <algorithm>
#include <map>

#include "bgp/attributes.h"
#include "bgp/message.h"

namespace peering::soak {
namespace {

/// Streaming FNV-1a: fingerprints never materialize the full table text.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix(&v, sizeof v); }
};

/// Deterministic per-circuit latency: the footprint's PoPs are different
/// distances apart, and spread latencies keep MRAI flushes from phase-
/// locking across the whole mesh.
Duration circuit_latency(std::size_t i, std::size_t j) {
  return Duration::millis(5 + static_cast<std::int64_t>((i * 7 + j * 13) % 46));
}

/// Merges every series of one histogram family into a single SeriesData so
/// mesh-wide quantiles come from the combined distribution.
obs::SeriesData merge_histograms(const obs::Snapshot& snap,
                                 std::string_view name) {
  obs::SeriesData merged;
  merged.name = std::string(name);
  merged.kind = obs::SeriesData::Kind::kHistogram;
  std::map<std::uint64_t, std::uint64_t> buckets;
  for (const auto& series : snap.series) {
    if (series.name != name ||
        series.kind != obs::SeriesData::Kind::kHistogram)
      continue;
    merged.count += series.count;
    merged.sum += series.sum;
    for (const auto& [bound, count] : series.buckets) buckets[bound] += count;
  }
  merged.buckets.assign(buckets.begin(), buckets.end());
  return merged;
}

}  // namespace

SoakHarness::SoakHarness(SoakConfig config,
                         const std::vector<inet::FeedRoute>* feed,
                         const inet::ChurnSchedule* schedule)
    : config_(std::move(config)), feed_(feed), schedule_(schedule) {
  if (schedule_ == nullptr) {
    owned_schedule_ =
        inet::generate_churn_schedule(feed_->size(), config_.churn);
    schedule_ = &owned_schedule_;
  }
  build();
}

SoakHarness::~SoakHarness() = default;

void SoakHarness::build() {
  const std::size_t pop_count = config_.pops.size();
  routers_.reserve(pop_count);
  for (std::size_t i = 0; i < pop_count; ++i) {
    vbgp::VRouterConfig rc;
    rc.name = config_.pops[i];
    rc.pop_id = config_.pops[i];
    rc.router_id = Ipv4Address(10, 255, static_cast<std::uint8_t>(i + 1), 1);
    rc.router_seed = static_cast<std::uint32_t>(i + 1);
    rc.pipeline = config_.pipeline;
    routers_.push_back(std::make_unique<vbgp::VRouter>(&loop_, rc));
  }

  fabric_ = std::make_unique<backbone::BackboneFabric>(&loop_);
  injector_ = std::make_unique<faults::FaultInjector>(&loop_, config_.fault_seed);
  for (std::size_t i = 0; i < pop_count; ++i)
    injector_->register_router(config_.pops[i], routers_[i].get());

  // iBGP full mesh: iBGP-learned routes are never re-exported, so every PoP
  // must hear the feed PoP directly. MRAI is armed on both ends before the
  // injector wires the transport — it is part of the export-group
  // fingerprint, so it must be set pre-establishment.
  for (std::size_t i = 0; i < pop_count; ++i) {
    for (std::size_t j = i + 1; j < pop_count; ++j) {
      backbone::Circuit& c = fabric_->provision(
          *routers_[i], *routers_[j], 1'000'000'000, circuit_latency(i, j),
          /*wire_bgp=*/false);
      routers_[i]->speaker().set_peer_mrai(c.peer_at_a, config_.backbone_mrai);
      routers_[j]->speaker().set_peer_mrai(c.peer_at_b, config_.backbone_mrai);
      std::string name = config_.pops[i] + "~" + config_.pops[j];
      injector_->connect_session(name, &routers_[i]->speaker(), c.peer_at_a,
                                 &routers_[j]->speaker(), c.peer_at_b,
                                 c.latency);
    }
  }

  // The feed neighbor: one eBGP session carrying the whole table into
  // pops[0]. global_id != 0 puts it in the platform-global next-hop pool,
  // so remote PoPs materialize it as a remote virtual neighbor and program
  // per-neighbor FIBs (time-to-FIB fires at every PoP).
  vbgp::NeighborSpec nb;
  nb.name = "feed";
  nb.asn = config_.table.neighbor_asn;
  nb.local_address = Ipv4Address(10, 0, 0, 2);
  nb.remote_address = config_.table.next_hop;
  nb.interface = -1;  // control-plane-only neighbor
  nb.global_id = 1;
  feed_peer_ = routers_[0]->add_neighbor(nb);

  feeder_ = std::make_unique<bgp::BgpSpeaker>(&loop_, "feed",
                                              config_.table.neighbor_asn,
                                              config_.table.next_hop);
  bgp::PeerConfig pc;
  pc.name = config_.pops[0];
  pc.peer_asn = routers_[0]->config().asn;
  pc.local_address = config_.table.next_hop;
  pc.peer_address = nb.local_address;
  feeder_peer_ = feeder_->add_peer(pc);
  injector_->connect_session("feed", feeder_.get(), feeder_peer_,
                             &routers_[0]->speaker(), feed_peer_,
                             Duration::millis(1));

  // Monitoring plane: one BMP-style session per PoP, all feeding the
  // station and the propagation tracer. Attached before the loop runs so
  // peer-up records and the initial table transfer are captured. Observer
  // bits (and the metric series) are interned in PoP order up front so the
  // tracer's layout is independent of route arrival order.
  monitors_.reserve(pop_count);
  for (std::size_t i = 0; i < pop_count; ++i) {
    auto session =
        std::make_unique<mon::MonitorSession>(&loop_, &routers_[i]->speaker());
    session->set_station(&station_);
    session->set_tracer(&tracer_);
    monitors_.push_back(std::move(session));
    tracer_.time_to_locrib(config_.pops[i]);
    tracer_.time_to_fib(config_.pops[i]);
    routers_[i]->set_fib_observer(
        [this, name = config_.pops[i]](const Ipv4Prefix& prefix,
                                       bool withdrawn) {
          if (!withdrawn) tracer_.note_fib(name, prefix, loop_.now());
        });
  }
  tracer_.locrib_aggregate();
  tracer_.fib_aggregate();
}

std::vector<bgp::BgpSpeaker*> SoakHarness::all_speakers() {
  std::vector<bgp::BgpSpeaker*> speakers;
  speakers.reserve(routers_.size() + 1);
  for (auto& router : routers_) speakers.push_back(&router->speaker());
  speakers.push_back(feeder_.get());
  return speakers;
}

void SoakHarness::establish() { loop_.run_for(config_.establish); }

std::size_t SoakHarness::established_sessions() const {
  std::size_t endpoints = 0;
  auto count = [&endpoints](const bgp::BgpSpeaker& speaker) {
    for (bgp::PeerId peer : speaker.peer_ids())
      if (speaker.session_state(peer) == bgp::SessionState::kEstablished)
        ++endpoints;
  };
  for (const auto& router : routers_)
    count(const_cast<vbgp::VRouter&>(*router).speaker());
  count(*feeder_);
  // Each live session contributes one endpoint per side.
  return endpoints / 2;
}

void SoakHarness::inject_table() {
  bgp::BgpSpeaker& speaker = routers_[0]->speaker();
  std::size_t staged = 0;
  for (const inet::FeedRoute& route : *feed_) {
    tracer_.stamp_origin(route.prefix, loop_.now());
    bgp::UpdateMessage update;
    update.attributes = route.attrs;
    update.nlri.push_back({0, route.prefix});
    speaker.inject_update(feed_peer_, update);
    if (++staged == config_.inject_batch) {
      speaker.drain_pipeline();
      // Let MRAI flushes and backbone deliveries interleave with the load,
      // as they would with a paced wire transfer.
      loop_.run_for(Duration::millis(20));
      staged = 0;
    }
  }
  speaker.drain_pipeline();
  loop_.run_for(Duration::millis(20));
}

bool SoakHarness::settle() {
  return faults::FaultInjector::await_quiescence(
      &loop_, all_speakers(), config_.settle_window,
      config_.settle_max_windows);
}

void SoakHarness::inject_event(const inet::ChurnEvent& event) {
  inet::FeedRoute route = inet::churn_event_route(*feed_, event);
  bgp::UpdateMessage update;
  if (route.withdraw) {
    update.withdrawn.push_back({0, route.prefix});
  } else {
    // Each (re-)announce starts a fresh propagation wave for its prefix.
    tracer_.stamp_origin(route.prefix, loop_.now());
    update.attributes = route.attrs;
    update.nlri.push_back({0, route.prefix});
  }
  routers_[0]->speaker().inject_update(feed_peer_, update);
}

void SoakHarness::replay_churn() {
  if (!config_.churn_enabled) return;
  const inet::ChurnSchedule& schedule = *schedule_;
  const SimTime start = loop_.now();

  // Compose backbone session flaps with the churn window: evenly spaced
  // over the schedule, alternating graceful CEASE and abrupt TCP reset,
  // targets walked in a fixed stride over the registered mesh sessions.
  const auto& sessions = injector_->session_names();
  std::vector<std::string> backbone_sessions;
  for (const auto& name : sessions)
    if (name != "feed") backbone_sessions.push_back(name);
  for (int k = 0; k < config_.session_flaps && !backbone_sessions.empty();
       ++k) {
    const std::string& target =
        backbone_sessions[(static_cast<std::size_t>(k) * 5 + 3) %
                          backbone_sessions.size()];
    SimTime at = start + Duration::nanos(schedule.end.ns() * (k + 1) /
                                         (config_.session_flaps + 1));
    injector_->inject_session_flap(target, at, config_.session_flap_down,
                                   k % 2 == 0 ? faults::FlapKind::kGraceful
                                              : faults::FlapKind::kTcpReset);
  }

  // Replay on the sim clock. Events sharing an instant (beacon waves,
  // storm fronts) are staged together and drained once, so they reach the
  // MRAI batcher as one burst — exactly what the coalescing gate measures.
  bgp::BgpSpeaker& speaker = routers_[0]->speaker();
  std::size_t i = 0;
  while (i < schedule.events.size()) {
    const SimTime at = start + schedule.events[i].at;
    if (at > loop_.now()) loop_.run_until(at);
    std::size_t j = i;
    while (j < schedule.events.size() &&
           schedule.events[j].at == schedule.events[i].at) {
      inject_event(schedule.events[j]);
      ++j;
    }
    speaker.drain_pipeline();
    i = j;
  }
}

void SoakHarness::run() {
  establish();
  inject_table();
  converged_initial_ = settle();
  if (config_.churn_enabled) {
    replay_churn();
    converged_post_churn_ = settle();
  }
}

std::uint64_t SoakHarness::locrib_fingerprint(std::size_t pop) const {
  Fnv f;
  const bgp::LocRib& rib = speaker(pop).loc_rib();
  const bgp::AttrCodecOptions options;
  auto mix_route = [&f, &options](const bgp::RibRoute& route) {
    f.mix_u64(
        (static_cast<std::uint64_t>(route.prefix.address().value()) << 8) |
        route.prefix.length());
    f.mix_u64((static_cast<std::uint64_t>(route.peer) << 32) | route.path_id);
    Bytes wire = bgp::encode_attributes(*route.attrs, options);
    f.mix(wire.data(), wire.size());
  };
  rib.visit_all(mix_route);
  f.mix_u64(0xbe57);  // domain separator: candidates vs best paths
  rib.visit_best(mix_route);
  return f.h;
}

std::uint64_t SoakHarness::locrib_fingerprint() const {
  Fnv f;
  for (std::size_t pop = 0; pop < routers_.size(); ++pop)
    f.mix_u64(locrib_fingerprint(pop));
  return f.h;
}

std::uint64_t SoakHarness::monitor_fingerprint() const {
  Fnv f;
  for (const auto& session : monitors_) {
    Bytes stream = session->encode();
    f.mix(stream.data(), stream.size());
    f.mix_u64(session->dropped());
  }
  f.mix_u64(station_.record_count());
  f.mix_u64(station_.dropped());
  return f.h;
}

SoakReport SoakHarness::report() const {
  SoakReport r;
  r.routes = feed_->size();
  r.pops = routers_.size();
  r.converged_initial = converged_initial_;
  r.converged_post_churn = converged_post_churn_;
  if (config_.churn_enabled) {
    r.churn_events = schedule_->events.size();
    r.churn_announces = schedule_->announces;
    r.churn_withdraws = schedule_->withdraws;
  }
  r.faults_scheduled = injector_->faults_scheduled();

  auto& tracer = const_cast<mon::PropagationTracer&>(tracer_);
  r.locrib_samples = tracer.locrib_samples();
  r.fib_samples = tracer.fib_samples();
  r.ttl_p50_ns = tracer.locrib_aggregate()->quantile(0.5);
  r.ttl_p99_ns = tracer.locrib_aggregate()->quantile(0.99);
  r.ttf_p99_ns = tracer.fib_aggregate()->quantile(0.99);

  obs::Snapshot snap =
      const_cast<obs::Registry&>(registry_).snapshot(SimTime(loop_.now().ns()));
  const obs::SeriesData flush = merge_histograms(snap, "bgp_mrai_flush_batch");
  r.mrai_flushes = flush.count;
  r.mrai_peer_flushes = flush.sum;
  r.mrai_batch_mean =
      flush.count == 0
          ? 0.0
          : static_cast<double>(flush.sum) / static_cast<double>(flush.count);
  r.export_log_depth_p99 =
      merge_histograms(snap, "bgp_export_group_log_depth").quantile(0.99);
  r.updates_out =
      static_cast<std::uint64_t>(snap.total("bgp_updates_out_total"));
  r.full_resyncs =
      static_cast<std::uint64_t>(snap.total("bgp_export_full_resyncs_total"));

  for (const auto& session : monitors_) {
    r.monitor_records += session->records().size();
    r.monitor_dropped += session->dropped();
  }
  for (const auto& router : routers_) {
    auto& rt = const_cast<vbgp::VRouter&>(*router);
    r.rib_memory_bytes += rt.speaker().memory_bytes();
    r.fib_memory_bytes += router->fib_memory_bytes();
  }
  r.rib_memory_bytes += feeder_->memory_bytes();
  return r;
}

}  // namespace peering::soak
