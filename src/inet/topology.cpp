#include "inet/topology.h"

#include <algorithm>
#include <deque>

namespace peering::inet {

const std::vector<bgp::Asn> AsGraph::kEmpty;

void AsGraph::add_provider(bgp::Asn customer, bgp::Asn provider) {
  add_as(customer);
  add_as(provider);
  providers_[customer].push_back(provider);
  customers_[provider].push_back(customer);
}

void AsGraph::add_peering(bgp::Asn a, bgp::Asn b) {
  add_as(a);
  add_as(b);
  peers_[a].push_back(b);
  peers_[b].push_back(a);
}

const std::vector<bgp::Asn>& AsGraph::providers(bgp::Asn asn) const {
  auto it = providers_.find(asn);
  return it == providers_.end() ? kEmpty : it->second;
}
const std::vector<bgp::Asn>& AsGraph::customers(bgp::Asn asn) const {
  auto it = customers_.find(asn);
  return it == customers_.end() ? kEmpty : it->second;
}
const std::vector<bgp::Asn>& AsGraph::peers(bgp::Asn asn) const {
  auto it = peers_.find(asn);
  return it == peers_.end() ? kEmpty : it->second;
}

std::set<bgp::Asn> AsGraph::customer_cone(bgp::Asn asn) const {
  std::set<bgp::Asn> cone{asn};
  std::deque<bgp::Asn> frontier{asn};
  while (!frontier.empty()) {
    bgp::Asn cur = frontier.front();
    frontier.pop_front();
    for (bgp::Asn c : customers(cur)) {
      if (cone.insert(c).second) frontier.push_back(c);
    }
  }
  return cone;
}

std::map<bgp::Asn, AsRoute> AsGraph::routes_to(bgp::Asn origin) const {
  std::map<bgp::Asn, AsRoute> routes;
  routes[origin] = AsRoute{RouteType::kCustomer, {}};

  auto better = [](const AsRoute& cand, const AsRoute& cur) {
    if (!cur.valid()) return true;
    if (static_cast<int>(cand.type) != static_cast<int>(cur.type))
      return static_cast<int>(cand.type) > static_cast<int>(cur.type);
    return cand.path.size() < cur.path.size();
  };

  // Phase 1: customer routes ripple up provider edges (BFS by path length
  // guarantees shortest-first assignment).
  std::deque<bgp::Asn> frontier{origin};
  while (!frontier.empty()) {
    bgp::Asn cur = frontier.front();
    frontier.pop_front();
    const AsRoute& cur_route = routes[cur];
    for (bgp::Asn p : providers(cur)) {
      AsRoute cand{RouteType::kCustomer, {}};
      cand.path.push_back(cur);
      cand.path.insert(cand.path.end(), cur_route.path.begin(),
                       cur_route.path.end());
      if (better(cand, routes[p])) {
        routes[p] = std::move(cand);
        frontier.push_back(p);
      }
    }
  }

  // Phase 2: ASes holding a customer route export it to their peers.
  // (One hop only: peer routes are not re-exported to peers/providers.)
  std::map<bgp::Asn, AsRoute> peer_updates;
  for (const auto& [asn, route] : routes) {
    if (route.type != RouteType::kCustomer) continue;
    for (bgp::Asn peer : peers(asn)) {
      AsRoute cand{RouteType::kPeer, {}};
      cand.path.push_back(asn);
      cand.path.insert(cand.path.end(), route.path.begin(), route.path.end());
      auto it = peer_updates.find(peer);
      if (better(cand, routes[peer]) &&
          (it == peer_updates.end() || better(cand, it->second)))
        peer_updates[peer] = std::move(cand);
    }
  }
  for (auto& [asn, route] : peer_updates) {
    if (better(route, routes[asn])) routes[asn] = std::move(route);
  }

  // Phase 3: any route propagates down customer edges (provider routes),
  // BFS shortest-first among provider routes.
  frontier.clear();
  for (const auto& [asn, route] : routes)
    if (route.valid()) frontier.push_back(asn);
  // Process in increasing path length for stable shortest-path results.
  std::vector<bgp::Asn> order(frontier.begin(), frontier.end());
  std::sort(order.begin(), order.end(), [&](bgp::Asn a, bgp::Asn b) {
    return routes[a].path.size() < routes[b].path.size();
  });
  frontier.assign(order.begin(), order.end());
  while (!frontier.empty()) {
    bgp::Asn cur = frontier.front();
    frontier.pop_front();
    const AsRoute cur_route = routes[cur];
    if (!cur_route.valid()) continue;
    for (bgp::Asn c : customers(cur)) {
      AsRoute cand{RouteType::kProvider, {}};
      cand.path.push_back(cur);
      cand.path.insert(cand.path.end(), cur_route.path.begin(),
                       cur_route.path.end());
      if (better(cand, routes[c])) {
        routes[c] = std::move(cand);
        frontier.push_back(c);
      }
    }
  }

  // Drop the origin's self entry path semantics: callers expect origin
  // present with an empty path.
  for (auto it = routes.begin(); it != routes.end();) {
    if (!it->second.valid())
      it = routes.erase(it);
    else
      ++it;
  }
  return routes;
}

bool AsGraph::path_is_valley_free(const AsGraph& graph,
                                  const std::vector<bgp::Asn>& path,
                                  bgp::Asn origin) {
  // The path is [next_as, ..., origin]; hop i means full[i] learned the
  // route from full[i+1]. Walking from the origin end toward the holder,
  // relationships must be a sequence of customer->provider hops, then at
  // most one peer hop, then provider->customer hops (no valleys).
  if (!path.empty() && path.back() != origin) return false;
  const std::vector<bgp::Asn>& full = path;
  int state = 0;  // 0 = climbing, 1 = after peer, 2 = descending
  for (std::size_t i = full.size(); i-- > 1;) {
    bgp::Asn from = full[i];      // closer to origin
    bgp::Asn to = full[i - 1];    // next AS toward holder
    auto is_provider_of = [&](bgp::Asn provider, bgp::Asn customer) {
      const auto& provs = graph.providers(customer);
      return std::find(provs.begin(), provs.end(), provider) != provs.end();
    };
    auto is_peer_of = [&](bgp::Asn a, bgp::Asn b) {
      const auto& ps = graph.peers(a);
      return std::find(ps.begin(), ps.end(), b) != ps.end();
    };
    if (is_provider_of(to, from)) {
      // climbing: only allowed before any peer/descent
      if (state != 0) return false;
    } else if (is_peer_of(to, from)) {
      if (state != 0) return false;
      state = 1;
    } else if (is_provider_of(from, to)) {
      state = 2;
    } else {
      return false;  // no relationship
    }
  }
  return true;
}

Internet generate_internet(const InternetConfig& config) {
  Internet net;
  Rng rng(config.seed);
  bgp::Asn next = config.first_asn;

  for (int i = 0; i < config.tier1_count; ++i) net.tier1.push_back(next++);
  for (int i = 0; i < config.tier2_count; ++i) net.tier2.push_back(next++);
  for (int i = 0; i < config.stub_count; ++i) net.stubs.push_back(next++);

  // Tier-1 clique.
  for (std::size_t i = 0; i < net.tier1.size(); ++i)
    for (std::size_t j = i + 1; j < net.tier1.size(); ++j)
      net.graph.add_peering(net.tier1[i], net.tier1[j]);

  // Tier-2: customers of 2-3 tier-1s, some lateral peering.
  for (bgp::Asn t2 : net.tier2) {
    std::size_t nprov = 2 + rng.below(2);
    std::set<std::size_t> chosen;
    while (chosen.size() < nprov)
      chosen.insert(rng.below(net.tier1.size()));
    for (std::size_t idx : chosen) net.graph.add_provider(t2, net.tier1[idx]);
  }
  for (std::size_t i = 0; i < net.tier2.size(); ++i)
    for (std::size_t j = i + 1; j < net.tier2.size(); ++j)
      if (rng.chance(config.tier2_peering_prob))
        net.graph.add_peering(net.tier2[i], net.tier2[j]);

  // Stubs: customers of 1-3 tier-2s; a /24 each.
  std::uint32_t prefix_index = 0;
  for (bgp::Asn stub : net.stubs) {
    std::size_t nprov = 1 + rng.below(3);
    std::set<std::size_t> chosen;
    while (chosen.size() < std::min(nprov, net.tier2.size()))
      chosen.insert(rng.below(net.tier2.size()));
    for (std::size_t idx : chosen) net.graph.add_provider(stub, net.tier2[idx]);
    // 192.x.y.0/24 space, deterministic.
    net.prefixes[stub] =
        Ipv4Prefix(Ipv4Address(192, static_cast<std::uint8_t>(prefix_index >> 8),
                               static_cast<std::uint8_t>(prefix_index), 0),
                   24);
    ++prefix_index;
  }
  return net;
}

}  // namespace peering::inet
