#include "inet/debugging.h"

#include <algorithm>
#include <deque>

namespace peering::inet {

namespace {

bool edge_blocked(const std::set<FilteredEdge>& blocked, bgp::Asn exporter,
                  bgp::Asn importer) {
  return blocked.count({exporter, importer}) > 0;
}

bool better(const AsRoute& cand, const AsRoute& cur) {
  if (!cur.valid()) return true;
  if (static_cast<int>(cand.type) != static_cast<int>(cur.type))
    return static_cast<int>(cand.type) > static_cast<int>(cur.type);
  return cand.path.size() < cur.path.size();
}

AsRoute extend(const AsRoute& base, bgp::Asn via, RouteType type) {
  AsRoute out;
  out.type = type;
  out.path.push_back(via);
  out.path.insert(out.path.end(), base.path.begin(), base.path.end());
  return out;
}

}  // namespace

std::map<bgp::Asn, AsRoute> routes_to_filtered(
    const AsGraph& graph, bgp::Asn origin,
    const std::set<FilteredEdge>& blocked) {
  std::map<bgp::Asn, AsRoute> routes;
  routes[origin] = AsRoute{RouteType::kCustomer, {}};

  // Phase 1: customer routes ripple up provider edges.
  std::deque<bgp::Asn> frontier{origin};
  while (!frontier.empty()) {
    bgp::Asn cur = frontier.front();
    frontier.pop_front();
    const AsRoute cur_route = routes[cur];
    for (bgp::Asn p : graph.providers(cur)) {
      if (edge_blocked(blocked, cur, p)) continue;
      AsRoute cand = extend(cur_route, cur, RouteType::kCustomer);
      if (better(cand, routes[p])) {
        routes[p] = std::move(cand);
        frontier.push_back(p);
      }
    }
  }

  // Phase 2: customer routes are exported to peers (one hop).
  std::map<bgp::Asn, AsRoute> peer_updates;
  for (const auto& [asn, route] : routes) {
    if (route.type != RouteType::kCustomer) continue;
    for (bgp::Asn peer : graph.peers(asn)) {
      if (edge_blocked(blocked, asn, peer)) continue;
      AsRoute cand = extend(route, asn, RouteType::kPeer);
      auto it = peer_updates.find(peer);
      if (better(cand, routes[peer]) &&
          (it == peer_updates.end() || better(cand, it->second)))
        peer_updates[peer] = std::move(cand);
    }
  }
  for (auto& [asn, route] : peer_updates) {
    if (better(route, routes[asn])) routes[asn] = std::move(route);
  }

  // Phase 3: everything propagates down customer edges.
  std::vector<bgp::Asn> order;
  for (const auto& [asn, route] : routes)
    if (route.valid()) order.push_back(asn);
  std::sort(order.begin(), order.end(), [&](bgp::Asn a, bgp::Asn b) {
    return routes[a].path.size() < routes[b].path.size();
  });
  frontier.assign(order.begin(), order.end());
  while (!frontier.empty()) {
    bgp::Asn cur = frontier.front();
    frontier.pop_front();
    const AsRoute cur_route = routes[cur];
    if (!cur_route.valid()) continue;
    for (bgp::Asn c : graph.customers(cur)) {
      if (edge_blocked(blocked, cur, c)) continue;
      AsRoute cand = extend(cur_route, cur, RouteType::kProvider);
      if (better(cand, routes[c])) {
        routes[c] = std::move(cand);
        frontier.push_back(c);
      }
    }
  }

  for (auto it = routes.begin(); it != routes.end();) {
    if (!it->second.valid())
      it = routes.erase(it);
    else
      ++it;
  }
  return routes;
}

FilterDiagnosis locate_filters(const AsGraph& graph, bgp::Asn origin,
                               const LookingGlassSet& glasses) {
  FilterDiagnosis diagnosis;

  // Gao-Rexford export rule: exporter e passes its route r to importer i
  // iff i is e's customer, or r is a customer route and i is e's provider
  // or peer.
  auto should_export = [&](bgp::Asn e, bgp::Asn i, const AsRoute& r) {
    const auto& customers = graph.customers(e);
    if (std::find(customers.begin(), customers.end(), i) != customers.end())
      return true;
    if (r.type != RouteType::kCustomer) return false;
    const auto& providers = graph.providers(e);
    if (std::find(providers.begin(), providers.end(), i) != providers.end())
      return true;
    const auto& peers = graph.peers(e);
    return std::find(peers.begin(), peers.end(), i) != peers.end();
  };

  auto neighbors_of = [&](bgp::Asn asn) {
    std::vector<bgp::Asn> out;
    for (bgp::Asn x : graph.providers(asn)) out.push_back(x);
    for (bgp::Asn x : graph.customers(asn)) out.push_back(x);
    for (bgp::Asn x : graph.peers(asn)) out.push_back(x);
    return out;
  };

  // The route each AS *would* select absent any filtering tells us who its
  // expected feeder is.
  auto expected = routes_to_filtered(graph, origin, {});

  for (bgp::Asn asn : glasses.available()) {
    auto view = glasses.query(asn);
    if (!view || view->valid()) continue;  // has a route: nothing to explain
    if (asn == origin) continue;

    bool found_suspect = false;
    for (bgp::Asn nb : neighbors_of(asn)) {
      auto nb_view = glasses.query(nb);
      if (!nb_view || !nb_view->valid()) continue;
      if (should_export(nb, asn, *nb_view)) {
        // nb demonstrably has the route and should have exported it here:
        // the (nb -> asn) adjacency hides a filter — on one side or the
        // other, which looking glasses cannot tell apart (Appendix A).
        diagnosis.suspects.push_back({nb, asn});
        found_suspect = true;
      }
    }
    if (found_suspect) continue;

    // No observable neighbor holds the route. If the AS's expected feeder
    // is observable and routeless, the gap is explained (the feeder's own
    // problem); if the feeder is dark, we hit the appendix's dead end.
    auto exp_it = expected.find(asn);
    if (exp_it == expected.end() || exp_it->second.path.empty()) continue;
    bgp::Asn feeder = exp_it->second.path.front();
    auto feeder_view = glasses.query(feeder);
    if (!feeder_view) diagnosis.unexplained.push_back(asn);
  }
  return diagnosis;
}

}  // namespace peering::inet
