#include "inet/route_feed.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace peering::inet {

std::vector<FeedRoute> generate_feed(const RouteFeedConfig& config) {
  Rng rng(config.seed);
  std::vector<FeedRoute> feed;
  feed.reserve(config.route_count);

  // Real routing tables share attribute sets across many prefixes (one AS
  // path serves every prefix that AS originates); generate a pool of
  // attribute templates and draw routes from it.
  std::size_t template_count = config.attribute_templates;
  if (template_count == 0)
    template_count = std::max<std::size_t>(1, config.route_count / 20);
  std::vector<bgp::PathAttributes> templates;
  templates.reserve(template_count);
  for (std::size_t t = 0; t < template_count; ++t) {
    bgp::PathAttributes attrs;
    std::vector<bgp::Asn> path{config.neighbor_asn};
    // Geometric-ish tail length around the configured mean.
    std::size_t tail = 1;
    while (rng.uniform() < (config.mean_path_tail - 1) / config.mean_path_tail &&
           tail < 12)
      ++tail;
    for (std::size_t h = 0; h < tail; ++h)
      path.push_back(static_cast<bgp::Asn>(rng.range(1000, 400000)));
    attrs.as_path = bgp::AsPath(std::move(path));
    attrs.origin =
        rng.chance(0.9) ? bgp::Origin::kIgp : bgp::Origin::kIncomplete;
    attrs.next_hop = Ipv4Address(
        static_cast<std::uint32_t>(rng.range(0x0A000001, 0x0AFFFFFE)));
    if (rng.chance(0.3))
      attrs.med = static_cast<std::uint32_t>(rng.below(200));
    if (rng.chance(config.community_prob)) {
      std::size_t n = 1 + rng.below(4);
      for (std::size_t c = 0; c < n; ++c)
        attrs.communities.push_back(
            bgp::Community(static_cast<std::uint16_t>(rng.range(1000, 65000)),
                           static_cast<std::uint16_t>(rng.below(1000))));
    }
    templates.push_back(std::move(attrs));
  }

  std::uint32_t base = (1u << 24);  // start at 1.0.0.0
  for (std::size_t i = 0; i < config.route_count; ++i) {
    FeedRoute route;
    std::uint8_t length = 24;
    double r = rng.uniform();
    if (r < 0.15)
      length = 22;
    else if (r < 0.25)
      length = 20;
    // Allocate non-overlapping blocks: align up to the prefix's own size
    // and advance past it, so prefixes stay unique for the full Figure 6a
    // x-axis (4M routes) without wrapping the 32-bit space.
    std::uint32_t block = 1u << (32 - length);
    base = (base + block - 1) & ~(block - 1);
    route.prefix = Ipv4Prefix(Ipv4Address(base), length);
    base += block;

    route.attrs = templates[rng.below(templates.size())];
    feed.push_back(std::move(route));
  }
  return feed;
}

std::vector<FeedRoute> generate_churn(const std::vector<FeedRoute>& feed,
                                      std::size_t update_count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeedRoute> updates;
  updates.reserve(update_count);
  // Routes the stream has withdrawn and not yet re-announced. A drawn index
  // that is currently withdrawn always re-announces its ORIGINAL attributes
  // next, so a withdraw round-trips to byte-identical state.
  std::unordered_set<std::size_t> withdrawn;
  for (std::size_t i = 0; i < update_count; ++i) {
    std::size_t idx = rng.below(feed.size());
    if (withdrawn.count(idx) != 0) {
      withdrawn.erase(idx);
      updates.push_back(feed[idx]);
    } else if (rng.chance(0.15)) {
      FeedRoute update;
      update.prefix = feed[idx].prefix;
      update.withdraw = true;
      withdrawn.insert(idx);
      updates.push_back(std::move(update));
    } else {
      FeedRoute update = feed[idx];
      // Churn flips a route between a small number of alternative attribute
      // versions (MED steps), preserving attribute sharing.
      update.attrs.med = static_cast<std::uint32_t>(rng.below(4) * 10);
      if (rng.chance(0.2)) {
        // Path change: re-prepend the first AS once.
        update.attrs.as_path =
            update.attrs.as_path.prepended(update.attrs.as_path.first());
      }
      updates.push_back(std::move(update));
    }
  }
  return updates;
}

// ---------------------------------------------------------------------------
// Internet-scale full table.

const std::vector<LengthShare>& full_table_length_model() {
  // RouteViews-shaped specifics mix: the /24 majority, the /23 step, the
  // /22 PA-allocation bump, thinning toward /18. Aggregates are emitted at
  // <= /17 so this table fully describes the >= /18 population.
  static const std::vector<LengthShare> model = {
      {24, 0.625}, {23, 0.090}, {22, 0.120}, {21, 0.050},
      {20, 0.060}, {19, 0.035}, {18, 0.020},
  };
  return model;
}

namespace {

std::uint8_t draw_specific_length(Rng& rng) {
  const auto& model = full_table_length_model();
  double r = rng.uniform();
  double acc = 0;
  for (const auto& row : model) {
    acc += row.share;
    if (r < acc) return row.length;
  }
  return model.back().length;
}

}  // namespace

std::vector<FeedRoute> generate_full_table(const FullTableConfig& config,
                                           FullTableStats* stats) {
  Rng rng(config.seed);
  std::vector<FeedRoute> feed;
  feed.reserve(config.route_count);

  // Zipf-like prefixes-per-origin: counts proportional to 1/rank, capped,
  // then padded/trimmed to sum to exactly route_count.
  std::size_t origin_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(config.route_count) /
                                  config.mean_prefixes_per_origin));
  constexpr std::size_t kMaxPerOrigin = 3000;
  double harmonic = 0;
  for (std::size_t r = 1; r <= origin_count; ++r)
    harmonic += 1.0 / static_cast<double>(r);
  std::vector<std::size_t> counts(origin_count);
  std::size_t total = 0;
  for (std::size_t r = 1; r <= origin_count; ++r) {
    auto n = static_cast<std::size_t>(static_cast<double>(config.route_count) /
                                      (harmonic * static_cast<double>(r)));
    n = std::clamp<std::size_t>(n, 1, kMaxPerOrigin);
    counts[r - 1] = n;
    total += n;
  }
  for (std::size_t i = 0; total < config.route_count; i = (i + 1) % origin_count) {
    if (counts[i] >= kMaxPerOrigin) continue;
    ++counts[i];
    ++total;
  }
  for (std::size_t i = origin_count; total > config.route_count;) {
    i = (i == 0 ? origin_count : i) - 1;
    if (counts[i] > 1) {
      --counts[i];
      --total;
    }
  }

  // The popular-community pool: the measurement studies find a small set of
  // values (blackhole, no-export relatives, big-transit informational tags)
  // dominating carriage; draws below are biased toward low pool ranks.
  std::vector<bgp::Community> popular;
  for (int i = 0; i < 24; ++i)
    popular.push_back(
        bgp::Community(static_cast<std::uint16_t>(rng.range(1000, 65000)),
                       static_cast<std::uint16_t>(rng.below(100))));

  const double tail_mean = std::max(0.0, config.mean_path_length - 2.0);
  const double tail_continue = tail_mean / (tail_mean + 1.0);
  const double comm_continue = config.mean_communities <= 1.0
                                   ? 0.0
                                   : (config.mean_communities - 1.0) /
                                         config.mean_communities;

  FullTableStats local;
  local.origin_count = origin_count;

  std::uint64_t base = 1ull << 24;  // start at 1.0.0.0
  std::vector<std::uint8_t> lengths;
  std::vector<bgp::PathAttributes> templates;
  for (std::size_t o = 0; o < origin_count; ++o) {
    std::size_t n = counts[o];
    auto origin_asn = static_cast<bgp::Asn>(3000 + o * 5);
    bool aggregate = n >= 4 && rng.chance(config.aggregate_prob);
    std::size_t n_spec = n - (aggregate ? 1 : 0);

    // Per-origin attribute templates: one AS path serves every prefix the
    // origin announces; large origins may split across a few upstream
    // paths. This is where the table's heavy attribute sharing comes from.
    std::size_t template_count = n >= 4 ? 1 + rng.below(3) : 1;
    templates.clear();
    for (std::size_t t = 0; t < template_count; ++t) {
      bgp::PathAttributes attrs;
      std::vector<bgp::Asn> path{config.neighbor_asn};
      std::size_t tail = 0;
      while (rng.chance(tail_continue) && tail < 10) ++tail;
      for (std::size_t h = 0; h < tail; ++h)
        path.push_back(static_cast<bgp::Asn>(rng.range(1000, 400000)));
      path.push_back(origin_asn);
      if (rng.chance(0.15)) {
        // Origin prepending (traffic engineering), 1-2 extra copies.
        std::size_t prepends = 1 + rng.below(2);
        for (std::size_t p = 0; p < prepends; ++p) path.push_back(origin_asn);
      }
      attrs.as_path = bgp::AsPath(std::move(path));
      attrs.origin =
          rng.chance(0.95) ? bgp::Origin::kIgp : bgp::Origin::kIncomplete;
      attrs.next_hop = config.next_hop;
      if (rng.chance(0.25))
        attrs.med = static_cast<std::uint32_t>(rng.below(100));
      if (rng.chance(config.community_carriage)) {
        std::size_t c = 1;
        while (rng.chance(comm_continue) && c < 16) ++c;
        for (std::size_t i = 0; i < c; ++i) {
          if (rng.chance(0.7)) {
            std::size_t a = rng.below(popular.size());
            std::size_t b = rng.below(popular.size());
            attrs.communities.push_back(popular[std::min(a, b)]);
          } else {
            attrs.communities.push_back(bgp::Community(
                static_cast<std::uint16_t>(rng.range(1000, 65000)),
                static_cast<std::uint16_t>(rng.below(1000))));
          }
        }
      }
      templates.push_back(std::move(attrs));
    }
    local.distinct_attr_sets += template_count + (aggregate ? 1 : 0);

    // Specific lengths, largest block first: carving in descending block
    // size inside an aligned region packs with no internal gaps.
    lengths.clear();
    for (std::size_t i = 0; i < n_spec; ++i)
      lengths.push_back(draw_specific_length(rng));
    std::sort(lengths.begin(), lengths.end());
    std::uint64_t space = 0;
    for (std::uint8_t l : lengths) space += 1ull << (32 - l);

    std::uint64_t block;
    if (aggregate) {
      // The origin's covering aggregate: the whole (power-of-two) block,
      // at most a /17 so specifics (>= /18) stay a separable population.
      block = std::max<std::uint64_t>(std::bit_ceil(space), 1ull << 15);
    } else {
      block = 1ull << (32 - lengths.front());  // alignment for the largest
    }
    base = (base + block - 1) & ~(block - 1);
    if (base + std::max(space, block) > 0xF0000000ull) {
      std::fprintf(stderr,
                   "generate_full_table: route_count %zu exhausts the "
                   "unicast space\n",
                   config.route_count);
      std::abort();
    }
    if (aggregate) {
      auto agg_len =
          static_cast<std::uint8_t>(32 - std::countr_zero(block));
      FeedRoute route;
      route.prefix =
          Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(base)), agg_len);
      route.attrs = templates.front();
      route.attrs.atomic_aggregate = true;
      feed.push_back(std::move(route));
      ++local.aggregate_routes;
    }
    std::uint64_t cursor = base;
    for (std::uint8_t l : lengths) {
      std::uint64_t b = 1ull << (32 - l);
      cursor = (cursor + b - 1) & ~(b - 1);
      FeedRoute route;
      route.prefix =
          Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(cursor)), l);
      route.attrs = templates[rng.below(template_count)];
      feed.push_back(std::move(route));
      cursor += b;
      ++local.specific_routes;
    }
    base = aggregate ? base + block : cursor;
  }

  if (stats != nullptr) *stats = local;
  return feed;
}

// ---------------------------------------------------------------------------
// Timed churn schedule.

namespace {

/// Draws up to `want` distinct feed indexes (best effort on tiny feeds).
std::vector<std::uint32_t> draw_route_set(Rng& rng, std::size_t feed_size,
                                          std::size_t want) {
  std::vector<std::uint32_t> routes;
  std::unordered_set<std::uint32_t> seen;
  std::size_t attempts = 0;
  while (routes.size() < std::min(want, feed_size) && attempts < want * 8) {
    ++attempts;
    auto idx = static_cast<std::uint32_t>(rng.below(feed_size));
    if (seen.insert(idx).second) routes.push_back(idx);
  }
  return routes;
}

}  // namespace

std::string ChurnSchedule::log() const {
  std::string out;
  out.reserve(events.size() * 24);
  char line[64];
  for (const auto& e : events) {
    std::snprintf(line, sizeof line, "%lld %c %u v%u\n",
                  static_cast<long long>(e.at.ns()),
                  e.kind == ChurnKind::kWithdraw ? 'W' : 'A', e.route,
                  static_cast<unsigned>(e.variant));
    out += line;
  }
  return out;
}

ChurnSchedule generate_churn_schedule(std::size_t feed_size,
                                      const ChurnScheduleConfig& config) {
  Rng rng(config.seed);
  std::uint64_t seq = 0;
  std::vector<std::pair<ChurnEvent, std::uint64_t>> staged;
  auto push = [&](Duration at, std::uint32_t route, ChurnKind kind,
                  std::uint8_t variant) {
    staged.push_back({ChurnEvent{at, route, kind, variant}, seq++});
  };

  // BGP-beacon waves: a fixed route set withdraws at every interval and
  // re-announces (original attributes) half an interval later.
  std::vector<std::uint32_t> beacons =
      draw_route_set(rng, feed_size, config.beacon_set);
  for (Duration t = config.beacon_interval;
       t + config.beacon_interval / 2 <= config.duration;
       t = t + config.beacon_interval) {
    for (std::uint32_t b : beacons) push(t, b, ChurnKind::kWithdraw, 0);
    Duration re = t + config.beacon_interval / 2;
    for (std::uint32_t b : beacons) push(re, b, ChurnKind::kAnnounce, 0);
  }

  // Flap storms: bursts of rapid withdraw/re-announce over a random route
  // set at seeded instants. The soak harness aligns session-flap faults
  // with these windows to compose prefix and session churn.
  std::int64_t storm_window =
      config.storm_flap_gap.ns() * static_cast<std::int64_t>(config.storm_flaps);
  for (std::size_t s = 0; s < config.storm_count; ++s) {
    std::int64_t span = std::max<std::int64_t>(1, config.duration.ns() -
                                                      storm_window);
    auto t0 = Duration::nanos(static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(span))));
    std::vector<std::uint32_t> routes =
        draw_route_set(rng, feed_size, config.storm_set);
    for (std::size_t j = 0; j < config.storm_flaps; ++j) {
      Duration tw = t0 + config.storm_flap_gap * static_cast<std::int64_t>(j);
      Duration ta = tw + config.storm_flap_gap / 2;
      for (std::uint32_t r : routes) {
        push(tw, r, ChurnKind::kWithdraw, 0);
        push(ta, r, ChurnKind::kAnnounce, 0);
      }
    }
  }

  // Background noise: uniform-jittered arrivals (integer math — no libm,
  // so the schedule is bit-stable across toolchains), mostly MED steps
  // with an occasional quick flap.
  if (config.background_rate_hz > 0) {
    auto period =
        static_cast<std::uint64_t>(1e9 / config.background_rate_hz);
    std::uint64_t t = 0;
    while (true) {
      t += period / 2 + rng.below(period + 1);
      if (t >= static_cast<std::uint64_t>(config.duration.ns())) break;
      auto route = static_cast<std::uint32_t>(rng.below(feed_size));
      auto at = Duration::nanos(static_cast<std::int64_t>(t));
      if (rng.chance(0.1)) {
        push(at, route, ChurnKind::kWithdraw, 0);
        Duration re = at + Duration::nanos(static_cast<std::int64_t>(period));
        if (re > config.duration) re = config.duration;
        push(re, route, ChurnKind::kAnnounce, 0);
      } else {
        push(at, route, ChurnKind::kAnnounce,
             static_cast<std::uint8_t>(1 + rng.below(3)));
      }
    }
  }

  std::stable_sort(staged.begin(), staged.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first.at != b.first.at)
                       return a.first.at < b.first.at;
                     return a.second < b.second;
                   });

  // Closure pass: every touched route's LAST event must re-announce the
  // original feed attributes, so the fully settled post-churn table equals
  // the pre-churn one — the soak self-checks against a fresh-converged
  // reference on exactly this property.
  std::unordered_map<std::uint32_t, const ChurnEvent*> last;
  for (const auto& [event, _] : staged) last[event.route] = &event;
  std::vector<std::uint32_t> restore;
  for (const auto& [route, event] : last) {
    if (event->kind == ChurnKind::kWithdraw || event->variant != 0)
      restore.push_back(route);
  }
  std::sort(restore.begin(), restore.end());

  ChurnSchedule schedule;
  schedule.events.reserve(staged.size() + restore.size());
  for (auto& [event, _] : staged) schedule.events.push_back(event);
  Duration t = config.duration;
  for (std::uint32_t route : restore) {
    t = t + Duration::micros(100);
    schedule.events.push_back(ChurnEvent{t, route, ChurnKind::kAnnounce, 0});
  }
  schedule.end = schedule.events.empty() ? config.duration
                                         : schedule.events.back().at;
  for (const auto& e : schedule.events) {
    if (e.kind == ChurnKind::kWithdraw)
      ++schedule.withdraws;
    else
      ++schedule.announces;
  }
  return schedule;
}

FeedRoute churn_event_route(const std::vector<FeedRoute>& feed,
                            const ChurnEvent& event) {
  FeedRoute route;
  route.prefix = feed[event.route].prefix;
  if (event.kind == ChurnKind::kWithdraw) {
    route.withdraw = true;
    return route;
  }
  route.attrs = feed[event.route].attrs;
  if (event.variant != 0)
    route.attrs.med = static_cast<std::uint32_t>(event.variant) * 10;
  return route;
}

}  // namespace peering::inet
