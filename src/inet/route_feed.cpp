#include "inet/route_feed.h"

#include <algorithm>

namespace peering::inet {

std::vector<FeedRoute> generate_feed(const RouteFeedConfig& config) {
  Rng rng(config.seed);
  std::vector<FeedRoute> feed;
  feed.reserve(config.route_count);

  // Real routing tables share attribute sets across many prefixes (one AS
  // path serves every prefix that AS originates); generate a pool of
  // attribute templates and draw routes from it.
  std::size_t template_count = config.attribute_templates;
  if (template_count == 0)
    template_count = std::max<std::size_t>(1, config.route_count / 20);
  std::vector<bgp::PathAttributes> templates;
  templates.reserve(template_count);
  for (std::size_t t = 0; t < template_count; ++t) {
    bgp::PathAttributes attrs;
    std::vector<bgp::Asn> path{config.neighbor_asn};
    // Geometric-ish tail length around the configured mean.
    std::size_t tail = 1;
    while (rng.uniform() < (config.mean_path_tail - 1) / config.mean_path_tail &&
           tail < 12)
      ++tail;
    for (std::size_t h = 0; h < tail; ++h)
      path.push_back(static_cast<bgp::Asn>(rng.range(1000, 400000)));
    attrs.as_path = bgp::AsPath(std::move(path));
    attrs.origin =
        rng.chance(0.9) ? bgp::Origin::kIgp : bgp::Origin::kIncomplete;
    attrs.next_hop = Ipv4Address(
        static_cast<std::uint32_t>(rng.range(0x0A000001, 0x0AFFFFFE)));
    if (rng.chance(0.3))
      attrs.med = static_cast<std::uint32_t>(rng.below(200));
    if (rng.chance(config.community_prob)) {
      std::size_t n = 1 + rng.below(4);
      for (std::size_t c = 0; c < n; ++c)
        attrs.communities.push_back(
            bgp::Community(static_cast<std::uint16_t>(rng.range(1000, 65000)),
                           static_cast<std::uint16_t>(rng.below(1000))));
    }
    templates.push_back(std::move(attrs));
  }

  std::uint32_t base = (1u << 24);  // start at 1.0.0.0
  for (std::size_t i = 0; i < config.route_count; ++i) {
    FeedRoute route;
    std::uint8_t length = 24;
    double r = rng.uniform();
    if (r < 0.15)
      length = 22;
    else if (r < 0.25)
      length = 20;
    // Allocate non-overlapping blocks: align up to the prefix's own size
    // and advance past it, so prefixes stay unique for the full Figure 6a
    // x-axis (4M routes) without wrapping the 32-bit space.
    std::uint32_t block = 1u << (32 - length);
    base = (base + block - 1) & ~(block - 1);
    route.prefix = Ipv4Prefix(Ipv4Address(base), length);
    base += block;

    route.attrs = templates[rng.below(templates.size())];
    feed.push_back(std::move(route));
  }
  return feed;
}

std::vector<FeedRoute> generate_churn(const std::vector<FeedRoute>& feed,
                                      std::size_t update_count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeedRoute> updates;
  updates.reserve(update_count);
  for (std::size_t i = 0; i < update_count; ++i) {
    FeedRoute update = feed[rng.below(feed.size())];
    // Churn flips a route between a small number of alternative attribute
    // versions (MED steps), preserving attribute sharing.
    update.attrs.med = static_cast<std::uint32_t>(rng.below(4) * 10);
    if (rng.chance(0.2)) {
      // Path change: re-prepend the first AS once.
      update.attrs.as_path =
          update.attrs.as_path.prepended(update.attrs.as_path.first());
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

}  // namespace peering::inet
