#include "tenant/compiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace peering::tenant {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string tap_name(const std::string& tenant_id) {
  // Stable, tenant-keyed device name: add/remove of one tenant never
  // renumbers another tenant's tap (templating's positional tapN scheme
  // would, which flaps tunnels on every removal).
  return "tap-" + tenant_id;
}

void render_session(std::ostringstream& out, const TenantIntent& intent,
                    bgp::Asn asn, const std::string& pop_id) {
  out << "protocol bgp tenant_" << intent.id << " {\n";
  out << "  description \"tenant " << intent.id << " at " << pop_id << "\";\n";
  out << "  local as 47065;\n";
  out << "  neighbor as " << asn << ";\n";
  out << "  hold time 90;\n";
  out << "  keepalive time 30;\n";
  out << "  connect retry time 30;\n";
  out << "  graceful restart on;\n";
  if (intent.add_path) out << "  add paths tx rx;\n";
  out << "  ipv4 {\n";
  out << "    import filter import_tenant_" << intent.id << ";\n";
  out << "    export filter export_tenant_" << intent.id << ";\n";
  out << "  };\n";
  out << "}\n";
}

void render_import(std::ostringstream& out, const TenantIntent& intent,
                   bgp::Asn asn, const std::vector<Ipv4Prefix>& prefixes) {
  out << "filter import_tenant_" << intent.id << " {\n";
  out << "  # allocation ownership\n";
  out << "  if ! (net ~ [";
  bool first = true;
  for (const auto& prefix : prefixes) {
    if (!first) out << ", ";
    out << prefix.str() << "+";
    first = false;
  }
  out << "]) then reject;\n";
  out << "  if (bgp_path.last != " << asn << ") then reject;\n";
  if (intent.capabilities.count(enforce::Capability::kAsPathPoisoning)) {
    out << "  # poisoning allowed: up to " << intent.max_poisoned_asns
        << " third-party ASNs\n";
  } else {
    out << "  if (bgp_path.len > 4) then reject;  # no poisoning grant\n";
  }
  if (intent.capabilities.count(enforce::Capability::kCommunities)) {
    out << "  # communities allowed: up to " << intent.max_communities << "\n";
  } else {
    out << "  bgp_community.delete([(*, *)]);  # strip: no community grant\n";
  }
  out << "  accept;\n";
  out << "}\n";
}

void render_export(std::ostringstream& out, const TenantIntent& intent,
                   const platform::PopModel& pop, const PopScope* scope,
                   std::size_t* exportable) {
  out << "filter export_tenant_" << intent.id << " {\n";
  *exportable = 0;
  // Scope gate: enumerate the interconnects this tenant's routes may reach
  // at this PoP. A wildcard intent (no scopes) exports everywhere.
  out << "  # exportable interconnects at " << pop.id << ":\n";
  for (const auto& ic : pop.interconnects) {
    bool allowed = scope == nullptr || scope->allows(ic.type);
    out << "  #   " << ic.name << " ("
        << platform::interconnect_type_name(ic.type) << "): "
        << (allowed ? "export" : "withhold") << "\n";
    if (allowed) ++*exportable;
  }
  for (int i = 0; i < intent.prepend; ++i)
    out << "  bgp_path.prepend(" << 47065 << ");\n";
  for (auto community : intent.communities)
    out << "  bgp_community.add((" << community.str() << "));\n";
  out << "  accept;\n";
  out << "}\n";
}

}  // namespace

const CompiledPopArtifacts* CompiledTenant::at_pop(
    const std::string& pop_id) const {
  for (const auto& artifacts : pops)
    if (artifacts.pop_id == pop_id) return &artifacts;
  return nullptr;
}

Ipv4Address tunnel_router_address(int index) {
  return Ipv4Address((100u << 24) | (64u << 16) |
                     (static_cast<std::uint32_t>(index) << 8) | 1u);
}

Ipv4Address tunnel_client_address(int index) {
  return Ipv4Address((100u << 24) | (64u << 16) |
                     (static_cast<std::uint32_t>(index) << 8) | 2u);
}

Result<CompiledTenant> IntentCompiler::compile(
    const TenantIntent& intent, const platform::ExperimentModel& exp,
    int tunnel_index) const {
  if (model_ == nullptr) return Error("tenant compiler: no platform model");
  if (Status valid = intent.validate(*model_); !valid.ok())
    return valid.error();
  if (exp.status != platform::ExperimentStatus::kApproved &&
      exp.status != platform::ExperimentStatus::kActive)
    return Error("tenant compiler: experiment '" + exp.id +
                 "' is not approved/active");
  if (exp.allocated_prefixes.empty())
    return Error("tenant compiler: experiment '" + exp.id +
                 "' has no allocation");
  if (tunnel_index < 0 || tunnel_index > 0x3fff)
    return Error("tenant compiler: tunnel index outside 100.64/10 budget");

  CompiledTenant tenant;
  tenant.intent = intent;
  tenant.asn = exp.asn;
  tenant.prefixes = exp.allocated_prefixes;
  tenant.grant = exp.to_grant();
  // The proposal form has no field for these two budgets, so the database
  // record keeps the defaults; the intent is their source of truth.
  tenant.grant.max_updates_per_day = intent.max_updates_per_day;
  tenant.grant.traffic_rate_bps = intent.traffic_rate_bps;
  tenant.tunnel_index = tunnel_index;

  std::uint64_t h = fnv1a(0xcbf29ce484222325ull, intent.fingerprint());

  for (const std::string& pop_id : intent.resolve_pops(*model_)) {
    const platform::PopModel& pop = model_->pops.at(pop_id);
    const PopScope* scope = intent.scope_for(pop_id);

    CompiledPopArtifacts artifacts;
    artifacts.pop_id = pop_id;

    std::ostringstream session, import, exportf;
    render_session(session, intent, exp.asn, pop_id);
    render_import(import, intent, exp.asn, exp.allocated_prefixes);
    render_export(exportf, intent, pop, scope,
                  &artifacts.exportable_interconnects);
    artifacts.session_config = session.str();
    artifacts.import_policy = import.str();
    artifacts.export_policy = exportf.str();

    // Netlink delta: the tenant's tunnel endpoint plus one route per
    // allocated prefix steering experiment traffic into the tunnel.
    platform::NlInterface tap;
    tap.name = tap_name(intent.id);
    tap.up = true;
    tap.addresses.push_back(
        platform::NlAddress{tunnel_router_address(tunnel_index), 30});
    artifacts.network_delta.interfaces.push_back(tap);
    for (const auto& prefix : exp.allocated_prefixes) {
      platform::NlRoute route;
      route.prefix = prefix;
      route.gateway = tunnel_client_address(tunnel_index);
      route.interface = tap.name;
      artifacts.network_delta.routes.push_back(route);
    }

    h = fnv1a(h, pop_id);
    h = fnv1a(h, artifacts.session_config);
    h = fnv1a(h, artifacts.import_policy);
    h = fnv1a(h, artifacts.export_policy);
    tenant.pops.push_back(std::move(artifacts));
  }

  if (tenant.pops.empty())
    return Error("tenant compiler: intent resolves to no PoPs: " + intent.id);

  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  tenant.fingerprint = std::string(buf);
  return tenant;
}

}  // namespace peering::tenant
