#include "tenant/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "netbase/log.h"
#include "platform/peering.h"

namespace peering::tenant {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TenantOrchestrator::TenantOrchestrator(platform::ConfigDatabase* db)
    : db_(db), metrics_(obs::Registry::global()) {
  obs_onboards_ = metrics_->counter("tenant_onboards_total");
  obs_onboard_failures_ = metrics_->counter("tenant_onboard_failures_total");
  obs_amends_ = metrics_->counter("tenant_amends_total");
  obs_removes_ = metrics_->counter("tenant_removes_total");
  obs_fleet_rollbacks_ = metrics_->counter("tenant_fleet_rollbacks_total");
  obs_fleet_rollback_failures_ =
      metrics_->counter("tenant_fleet_rollback_failures_total");
  obs_active_ = metrics_->gauge("tenant_active");
  obs_onboard_ops_ = metrics_->histogram("tenant_onboard_netlink_ops");
  obs_onboard_wall_ns_ = metrics_->timing_histogram("tenant_onboard_wall_ns");
}

Status TenantOrchestrator::register_pop(
    const std::string& pop_id, enforce::ControlPlaneEnforcer* external) {
  auto pop_it = db_->model().pops.find(pop_id);
  if (pop_it == db_->model().pops.end())
    return Error("tenant orchestrator: no such pop: " + pop_id);
  if (pops_.count(pop_id))
    return Error("tenant orchestrator: pop already managed: " + pop_id);
  const platform::PopModel& model = pop_it->second;

  PopState state;
  state.pop_id = pop_id;
  state.netlink = std::make_unique<platform::NetlinkSim>();
  state.controller =
      std::make_unique<platform::NetworkController>(state.netlink.get());
  if (external != nullptr) {
    state.enforcer = external;
  } else {
    state.owned_enforcer = std::make_unique<enforce::ControlPlaneEnforcer>();
    state.owned_enforcer->install_default_rules({47065, 47064});
    state.enforcer = state.owned_enforcer.get();
  }

  // Tenantless baseline, mirroring templating's desired state: loopback,
  // the physical interface, and one policy rule + table per interconnect.
  state.baseline.interfaces.push_back(
      platform::NlInterface{"lo", true, {{Ipv4Address(127, 0, 0, 1), 8}}});
  state.baseline.interfaces.push_back(
      platform::NlInterface{"eth0", true, {{Ipv4Address(10, 0, 0, 1), 24}}});
  std::uint32_t table = 1000;
  std::uint32_t priority = 100;
  for (const auto& ic : model.interconnects) {
    platform::NlRule rule;
    rule.priority = priority++;
    rule.selector = "dmac:neighbor-" + std::to_string(ic.global_id);
    rule.table = table++;
    state.baseline.rules.push_back(rule);
  }

  platform::ApplyResult applied = state.controller->apply(state.baseline);
  if (!applied.success)
    return Error("tenant orchestrator: baseline apply failed at " + pop_id +
                 ": " + applied.error);
  state.applied = state.baseline;
  pops_.emplace(pop_id, std::move(state));
  return Status::Ok();
}

Status TenantOrchestrator::register_all_pops() {
  for (const auto& [pop_id, pop] : db_->model().pops) {
    (void)pop;
    if (pops_.count(pop_id)) continue;
    if (Status st = register_pop(pop_id); !st.ok()) return st;
  }
  return Status::Ok();
}

Status TenantOrchestrator::attach_platform(platform::Peering* platform) {
  for (const std::string& pop_id : platform->pop_ids()) {
    platform::PopRuntime* pop = platform->pop(pop_id);
    if (pop == nullptr || pop->control == nullptr)
      return Error("tenant orchestrator: platform pop not built: " + pop_id);
    if (Status st = register_pop(pop_id, pop->control.get()); !st.ok())
      return st;
  }
  platform_ = platform;
  platform->set_tenant_reporter(
      [this](const std::string& id) { return show_tenant(id); });
  return Status::Ok();
}

platform::DesiredNetworkState TenantOrchestrator::desired_for(
    const PopState& pop,
    const std::map<std::string, CompiledTenant>& tenants) const {
  platform::DesiredNetworkState desired = pop.baseline;
  // Tenants splice in ascending-id order. Every artifact is stably keyed by
  // tenant id, so adding or removing one tenant perturbs nothing else.
  for (const auto& [id, tenant] : tenants) {
    (void)id;
    const CompiledPopArtifacts* artifacts = tenant.at_pop(pop.pop_id);
    if (artifacts == nullptr) continue;
    for (const auto& nif : artifacts->network_delta.interfaces)
      desired.interfaces.push_back(nif);
    for (const auto& route : artifacts->network_delta.routes)
      desired.routes.push_back(route);
    for (const auto& rule : artifacts->network_delta.rules)
      desired.rules.push_back(rule);
  }
  return desired;
}

FleetApplyReport TenantOrchestrator::apply_fleet(
    const std::map<std::string, CompiledTenant>& tenants) {
  FleetApplyReport report;

  // Phase 1 — plan: compute every PoP's desired state before touching any.
  struct Step {
    PopState* pop;
    platform::DesiredNetworkState desired;
    platform::DesiredNetworkState previous;
    bool committed = false;
  };
  std::vector<Step> steps;
  for (auto& [pop_id, pop] : pops_) {
    (void)pop_id;
    steps.push_back({&pop, desired_for(pop, tenants), pop.applied, false});
  }

  // Phase 2 — commit PoP by PoP (ascending pop id; pops_ is ordered).
  for (Step& step : steps) {
    if (step.pop->controller->in_sync(step.desired)) {
      step.pop->applied = step.desired;
      step.committed = true;
      continue;
    }
    platform::ApplyResult result = step.pop->controller->apply(step.desired);
    report.changes_applied += result.changes_applied;
    report.rollback_failures += result.rollback_failures;
    if (result.success) {
      step.pop->applied = step.desired;
      step.committed = true;
      ++report.pops_committed;
      continue;
    }

    // Mid-fleet failure. The failing PoP already rolled itself back; walk
    // the committed PoPs back to their previous applied state so the fleet
    // stays on one tenant generation.
    report.error =
        "apply failed at " + step.pop->pop_id + ": " + result.error;
    report.rolled_back = true;
    obs_fleet_rollbacks_->inc();
    metrics_->trace().emit(SimTime{}, "tenant", "fleet-rollback",
                           {{"pop", step.pop->pop_id},
                            {"error", result.error}});
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
      if (!it->committed) continue;
      platform::ApplyResult undo = it->pop->controller->apply(it->previous);
      report.rollback_failures += undo.rollback_failures;
      if (!undo.success) {
        ++report.rollback_failures;
        obs_fleet_rollback_failures_->inc();
        metrics_->trace().emit(SimTime{}, "tenant", "fleet-rollback-failure",
                               {{"pop", it->pop->pop_id},
                                {"error", undo.error}});
        LOG_ERROR("tenant", "fleet rollback failed at "
                                << it->pop->pop_id << ": " << undo.error);
        continue;
      }
      it->pop->applied = it->previous;
    }
    report.success = false;
    return report;
  }

  report.success = true;
  return report;
}

void TenantOrchestrator::install_grants(const CompiledTenant& tenant) {
  std::int64_t announced = 0;
  for (const auto& artifacts : tenant.pops) {
    auto it = pops_.find(artifacts.pop_id);
    if (it == pops_.end()) continue;
    it->second.enforcer->set_grant(tenant.grant);
    if (artifacts.exportable_interconnects > 0)
      announced += static_cast<std::int64_t>(tenant.prefixes.size());
  }
  metrics_
      ->gauge("tenant_announced_prefixes", {{"tenant", tenant.intent.id}})
      ->set(announced);
}

void TenantOrchestrator::drop_grants(const CompiledTenant& tenant) {
  for (const auto& artifacts : tenant.pops) {
    auto it = pops_.find(artifacts.pop_id);
    if (it == pops_.end()) continue;
    it->second.enforcer->remove_grant(tenant.intent.id);
  }
  metrics_
      ->gauge("tenant_announced_prefixes", {{"tenant", tenant.intent.id}})
      ->set(0);
}

int TenantOrchestrator::allocate_tunnel_slot() {
  if (!free_tunnel_slots_.empty()) {
    int slot = *free_tunnel_slots_.begin();
    free_tunnel_slots_.erase(free_tunnel_slots_.begin());
    return slot;
  }
  return next_tunnel_slot_++;
}

Result<TenantApplyResult> TenantOrchestrator::onboard(
    const TenantIntent& intent) {
  std::uint64_t t0 = wall_ns();
  auto fail = [&](Error error, bool proposed, int slot) {
    if (proposed) (void)db_->retire_experiment(intent.id);
    if (slot >= 0) free_tunnel_slots_.insert(slot);
    obs_onboard_failures_->inc();
    return error;
  };

  if (pops_.empty())
    return fail(Error("tenant orchestrator: no managed pops"), false, -1);
  if (tenants_.count(intent.id))
    return fail(Error("tenant orchestrator: tenant already live: " + intent.id),
                false, -1);
  if (Status valid = intent.validate(db_->model()); !valid.ok())
    return fail(valid.error(), false, -1);

  // Lifecycle: proposal → approval (allocation + credentials) → optional
  // explicit assignment → activation at every scoped PoP.
  if (Status st = db_->propose_experiment(intent.to_proposal()); !st.ok())
    return fail(st.error(), false, -1);
  Result<platform::Credentials> credentials =
      db_->approve_experiment(intent.id, intent.capabilities);
  if (!credentials.ok()) return fail(credentials.error(), true, -1);
  if (!intent.explicit_prefixes.empty()) {
    if (Status st = db_->assign_prefixes(intent.id, intent.explicit_prefixes);
        !st.ok())
      return fail(st.error(), true, -1);
  }
  std::vector<std::string> scoped_pops = intent.resolve_pops(db_->model());
  for (const std::string& pop_id : scoped_pops) {
    if (Status st = db_->activate_experiment(intent.id, pop_id); !st.ok())
      return fail(st.error(), true, -1);
  }

  const platform::ExperimentModel* exp = db_->experiment(intent.id);
  int slot = allocate_tunnel_slot();
  IntentCompiler compiler(&db_->model());
  Result<CompiledTenant> compiled = compiler.compile(intent, *exp, slot);
  if (!compiled.ok()) return fail(compiled.error(), true, slot);

  std::uint64_t ops_before = 0;
  for (const auto& [pop_id, pop] : pops_) {
    (void)pop_id;
    ops_before += pop.netlink->mutation_count();
  }

  tenants_.emplace(intent.id, *compiled);
  FleetApplyReport fleet = apply_fleet(tenants_);
  if (!fleet.success) {
    tenants_.erase(intent.id);
    return fail(Error("tenant onboard rolled back: " + fleet.error), true,
                slot);
  }

  // Grants only land after the whole fleet committed: a rolled-back tenant
  // never has announcement rights anywhere.
  install_grants(*compiled);
  obs_onboards_->inc();
  obs_active_->set(static_cast<std::int64_t>(tenants_.size()));
  std::uint64_t ops_after = 0;
  for (const auto& [pop_id, pop] : pops_) {
    (void)pop_id;
    ops_after += pop.netlink->mutation_count();
  }
  obs_onboard_ops_->record(ops_after - ops_before);
  obs_onboard_wall_ns_->record(wall_ns() - t0);

  TenantApplyResult out;
  out.tenant_id = intent.id;
  out.fingerprint = compiled->fingerprint;
  out.pops = std::move(scoped_pops);
  out.fleet = fleet;
  return out;
}

Result<TenantApplyResult> TenantOrchestrator::amend(
    const TenantIntent& intent) {
  auto it = tenants_.find(intent.id);
  if (it == tenants_.end())
    return Error("tenant orchestrator: tenant not live: " + intent.id);
  if (Status valid = intent.validate(db_->model()); !valid.ok())
    return valid.error();

  CompiledTenant previous = it->second;
  auto revert_db = [&]() {
    (void)db_->update_capabilities(intent.id, previous.intent.capabilities,
                                   previous.intent.max_poisoned_asns,
                                   previous.intent.max_communities);
    (void)db_->assign_prefixes(intent.id, previous.prefixes);
  };

  if (Status st =
          db_->update_capabilities(intent.id, intent.capabilities,
                                   intent.max_poisoned_asns,
                                   intent.max_communities);
      !st.ok())
    return st.error();
  if (!intent.explicit_prefixes.empty() &&
      intent.explicit_prefixes != previous.prefixes) {
    if (Status st = db_->assign_prefixes(intent.id, intent.explicit_prefixes);
        !st.ok()) {
      revert_db();
      return st.error();
    }
  }
  std::vector<std::string> scoped_pops = intent.resolve_pops(db_->model());
  for (const std::string& pop_id : scoped_pops) {
    if (Status st = db_->activate_experiment(intent.id, pop_id); !st.ok()) {
      revert_db();
      return st.error();
    }
  }

  const platform::ExperimentModel* exp = db_->experiment(intent.id);
  IntentCompiler compiler(&db_->model());
  Result<CompiledTenant> compiled =
      compiler.compile(intent, *exp, previous.tunnel_index);
  if (!compiled.ok()) {
    revert_db();
    return compiled.error();
  }

  it->second = *compiled;
  FleetApplyReport fleet = apply_fleet(tenants_);
  if (!fleet.success) {
    it->second = previous;
    revert_db();
    return Error("tenant amend rolled back: " + fleet.error);
  }

  // Re-grant under the new intent; PoPs the amendment dropped lose theirs.
  drop_grants(previous);
  install_grants(*compiled);
  obs_amends_->inc();

  TenantApplyResult out;
  out.tenant_id = intent.id;
  out.fingerprint = compiled->fingerprint;
  out.pops = std::move(scoped_pops);
  out.fleet = fleet;
  return out;
}

Status TenantOrchestrator::remove(const std::string& tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end())
    return Error("tenant orchestrator: tenant not live: " + tenant_id);

  // Reconcile the fleet without the tenant FIRST; grants and the database
  // record only go once the network committed, so a failed removal leaves
  // the tenant fully intact.
  CompiledTenant removed = it->second;
  std::map<std::string, CompiledTenant> next = tenants_;
  next.erase(tenant_id);
  FleetApplyReport fleet = apply_fleet(next);
  if (!fleet.success)
    return Error("tenant remove rolled back: " + fleet.error);

  drop_grants(removed);
  tenants_.erase(tenant_id);
  free_tunnel_slots_.insert(removed.tunnel_index);
  (void)db_->retire_experiment(tenant_id);
  obs_removes_->inc();
  obs_active_->set(static_cast<std::int64_t>(tenants_.size()));
  return Status::Ok();
}

const CompiledTenant* TenantOrchestrator::tenant(const std::string& id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<std::string> TenantOrchestrator::tenant_ids() const {
  std::vector<std::string> ids;
  for (const auto& [id, tenant] : tenants_) {
    (void)tenant;
    ids.push_back(id);
  }
  return ids;
}

std::string TenantOrchestrator::show_tenant(const std::string& id) const {
  const CompiledTenant* tenant = this->tenant(id);
  if (tenant == nullptr) return "tenant " + id + ": not found\n";

  std::ostringstream os;
  os << "tenant " << id << "\n";
  os << "  origin AS" << tenant->asn << ", fingerprint "
     << tenant->fingerprint << ", tunnel slot " << tenant->tunnel_index
     << "\n";
  os << "  announced prefixes:";
  for (const auto& prefix : tenant->prefixes) os << " " << prefix.str();
  os << "\n";
  os << "  knobs: prepend=" << tenant->intent.prepend
     << " communities=" << tenant->intent.communities.size()
     << " add-path=" << (tenant->intent.add_path ? "yes" : "no") << "\n";
  os << "  capabilities:";
  if (tenant->intent.capabilities.empty()) os << " (basic announcements)";
  for (auto cap : tenant->intent.capabilities)
    os << " " << enforce::capability_name(cap);
  os << "\n";
  os << "  active pops (" << tenant->pops.size() << "):\n";
  for (const auto& artifacts : tenant->pops) {
    os << "    " << artifacts.pop_id << ": "
       << artifacts.exportable_interconnects << " exportable interconnects, "
       << artifacts.network_delta.routes.size() << " mux routes\n";
  }
  if (!tenant->pops.empty()) {
    os << "  compiled export policy (" << tenant->pops.front().pop_id
       << "):\n";
    std::istringstream policy(tenant->pops.front().export_policy);
    std::string line;
    while (std::getline(policy, line)) os << "    " << line << "\n";
  }
  return os.str();
}

std::string TenantOrchestrator::show_summary() const {
  std::ostringstream os;
  os << "tenant control plane: " << tenants_.size() << " active across "
     << pops_.size() << " pops\n";
  os << "  lifecycle: onboards=" << obs_onboards_->value()
     << " failures=" << obs_onboard_failures_->value()
     << " amends=" << obs_amends_->value()
     << " removes=" << obs_removes_->value()
     << " fleet-rollbacks=" << obs_fleet_rollbacks_->value()
     << " rollback-failures=" << obs_fleet_rollback_failures_->value()
     << "\n";
  for (const auto& [id, tenant] : tenants_) {
    os << "  " << id << ": AS" << tenant.asn << ", "
       << tenant.prefixes.size() << " prefixes, " << tenant.pops.size()
       << " pops, fp " << tenant.fingerprint << "\n";
  }
  return os.str();
}

std::string TenantOrchestrator::fleet_state_fingerprint() const {
  // Canonical rendering of everything the orchestrator manages: per-PoP
  // netlink state plus each enforcer's grants. Deliberately NOT a hash —
  // mismatching fingerprints should diff usefully in test failures.
  std::ostringstream os;
  for (const auto& [pop_id, pop] : pops_) {
    os << "pop " << pop_id << "\n";
    for (const auto& nif : pop.netlink->interfaces()) {
      os << " if " << nif.name << (nif.up ? " up" : " down");
      for (const auto& addr : nif.addresses)
        os << " " << addr.address.str() << "/" << int(addr.prefix_length);
      os << "\n";
    }
    for (const auto& route : pop.netlink->routes())
      os << " route " << route.prefix.str() << " via " << route.gateway.str()
         << " dev " << route.interface << " table " << route.table << "\n";
    for (const auto& rule : pop.netlink->rules())
      os << " rule " << rule.priority << " " << rule.selector << " table "
         << rule.table << "\n";
    for (const auto& [grant_id, grant] : pop.enforcer->grants()) {
      os << " grant " << grant_id << " origins";
      for (auto asn : grant.allowed_origin_asns) os << " " << asn;
      os << " prefixes";
      for (const auto& prefix : grant.allocated_prefixes)
        os << " " << prefix.str();
      os << " caps";
      for (auto cap : grant.capabilities)
        os << " " << enforce::capability_name(cap);
      os << " budgets " << grant.max_poisoned_asns << "/"
         << grant.max_communities << "/" << grant.max_updates_per_day << "/"
         << grant.traffic_rate_bps << "\n";
    }
  }
  return os.str();
}

platform::NetlinkSim* TenantOrchestrator::netlink(const std::string& pop_id) {
  auto it = pops_.find(pop_id);
  return it == pops_.end() ? nullptr : it->second.netlink.get();
}

enforce::ControlPlaneEnforcer* TenantOrchestrator::enforcer(
    const std::string& pop_id) {
  auto it = pops_.find(pop_id);
  return it == pops_.end() ? nullptr : it->second.enforcer;
}

}  // namespace peering::tenant
