// The intent compiler (ISSUE 9): lowers one TenantIntent plus the tenant's
// approved allocation (from the config database) into every concrete
// artifact a PoP needs — the BIRD-style session stanza and import/export
// policy, the enforcement grant, and the per-mux DesiredNetworkState delta
// (tap device + allocation routes) that the TenantOrchestrator splices into
// each server's fleet-level desired state. Compilation is deterministic:
// equal (intent, allocation, model) inputs yield byte-identical artifacts
// and an equal fingerprint, which is what makes amends minimal-diff and
// remove+rollback byte-identity checkable.
#pragma once

#include <string>
#include <vector>

#include "enforce/capabilities.h"
#include "netbase/result.h"
#include "platform/controller.h"
#include "platform/model.h"
#include "tenant/intent.h"

namespace peering::tenant {

/// Everything one PoP runs for one tenant.
struct CompiledPopArtifacts {
  std::string pop_id;
  /// BIRD-style protocol stanza for the tenant's ADD-PATH session.
  std::string session_config;
  /// BIRD-style import filter (ownership, origin, capability gates).
  std::string import_policy;
  /// BIRD-style export filter (scope classes, prepend, communities).
  std::string export_policy;
  /// The netlink delta this tenant adds to the PoP's desired state: one
  /// stably named tap interface plus one route per allocated prefix.
  platform::DesiredNetworkState network_delta;
  /// Interconnects at this PoP the scope exports to (0 at an unscoped PoP).
  std::size_t exportable_interconnects = 0;
};

/// A fully lowered tenant, ready for transactional apply.
struct CompiledTenant {
  TenantIntent intent;
  bgp::Asn asn = 0;
  std::vector<Ipv4Prefix> prefixes;
  enforce::ExperimentGrant grant;
  /// Fleet-stable tunnel slot: names the tap device subnet at every PoP.
  int tunnel_index = -1;
  /// Artifacts per provisioned PoP, ascending pop_id.
  std::vector<CompiledPopArtifacts> pops;
  /// FNV-1a over every rendered artifact (includes the intent fingerprint).
  std::string fingerprint;

  const CompiledPopArtifacts* at_pop(const std::string& pop_id) const;
};

/// Tap addressing helpers shared with tests: slot `index` owns the /24
/// 100.64.0.0/10 + index*256; the router side is .1, the tenant side .2.
Ipv4Address tunnel_router_address(int index);
Ipv4Address tunnel_client_address(int index);

class IntentCompiler {
 public:
  /// Non-owning; the model must outlive the compiler (the orchestrator
  /// passes its config database's live model).
  explicit IntentCompiler(const platform::PlatformModel* model)
      : model_(model) {}

  /// Lowers `intent` for an approved/active experiment record carrying its
  /// allocation. `tunnel_index` is the orchestrator-assigned stable slot.
  Result<CompiledTenant> compile(const TenantIntent& intent,
                                 const platform::ExperimentModel& exp,
                                 int tunnel_index) const;

 private:
  const platform::PlatformModel* model_;
};

}  // namespace peering::tenant
