#include "tenant/intent.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace peering::tenant {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Status TenantIntent::validate(const platform::PlatformModel& model) const {
  if (id.empty()) return Error("tenant: empty tenant id");
  if (explicit_prefixes.empty() && prefix_count < 1)
    return Error("tenant: must request at least one prefix: " + id);
  if (prepend < 0 || prepend > 16)
    return Error("tenant: prepend count out of range [0,16]: " + id);
  std::set<std::string> seen;
  for (const PopScope& scope : scopes) {
    if (!model.pops.count(scope.pop_id))
      return Error("tenant: scope names unknown pop '" + scope.pop_id +
                   "': " + id);
    if (!seen.insert(scope.pop_id).second)
      return Error("tenant: duplicate scope for pop '" + scope.pop_id +
                   "': " + id);
  }
  if (!communities.empty() &&
      capabilities.count(enforce::Capability::kCommunities) == 0)
    return Error("tenant: communities attached without kCommunities grant: " +
                 id);
  if (static_cast<int>(communities.size()) > max_communities &&
      !communities.empty())
    return Error("tenant: more communities than the granted budget: " + id);
  if (max_poisoned_asns > 0 &&
      capabilities.count(enforce::Capability::kAsPathPoisoning) == 0)
    return Error(
        "tenant: poisoned-ASN budget without kAsPathPoisoning grant: " + id);
  return Status::Ok();
}

std::vector<std::string> TenantIntent::resolve_pops(
    const platform::PlatformModel& model) const {
  std::vector<std::string> pops;
  if (scopes.empty()) {
    for (const auto& [pop_id, pop] : model.pops) pops.push_back(pop_id);
    return pops;  // map order is already ascending
  }
  for (const PopScope& scope : scopes)
    if (model.pops.count(scope.pop_id)) pops.push_back(scope.pop_id);
  std::sort(pops.begin(), pops.end());
  return pops;
}

const PopScope* TenantIntent::scope_for(const std::string& pop_id) const {
  if (scopes.empty()) return nullptr;  // wildcard: every pop, every class
  for (const PopScope& scope : scopes)
    if (scope.pop_id == pop_id) return &scope;
  return nullptr;
}

platform::ExperimentProposal TenantIntent::to_proposal() const {
  platform::ExperimentProposal proposal;
  proposal.id = id;
  proposal.description = description;
  proposal.contact = contact;
  proposal.execution_plan = "tenant-intent";
  proposal.requested_prefixes =
      explicit_prefixes.empty() ? prefix_count
                                : static_cast<int>(explicit_prefixes.size());
  proposal.requested_capabilities = capabilities;
  proposal.requested_poisoned_asns = max_poisoned_asns;
  proposal.requested_communities = max_communities;
  return proposal;
}

std::string TenantIntent::fingerprint() const {
  // Canonical rendering: sorted scopes, every knob spelled out.
  std::ostringstream os;
  os << "id=" << id << ";n=" << prefix_count << ";px=";
  for (const auto& prefix : explicit_prefixes) os << prefix.str() << ",";
  std::vector<std::string> rendered;
  for (const PopScope& scope : scopes) {
    std::ostringstream s;
    s << scope.pop_id << "[";
    for (auto type : scope.peer_classes)
      s << platform::interconnect_type_name(type) << ",";
    s << "]";
    rendered.push_back(s.str());
  }
  std::sort(rendered.begin(), rendered.end());
  os << ";scopes=";
  for (const auto& s : rendered) os << s << "|";
  os << ";prepend=" << prepend << ";comm=";
  for (auto c : communities) os << c.str() << ",";
  os << ";addpath=" << (add_path ? 1 : 0) << ";caps=";
  for (auto cap : capabilities) os << enforce::capability_name(cap) << ",";
  os << ";poison=" << max_poisoned_asns << ";maxcomm=" << max_communities
     << ";updates=" << max_updates_per_day << ";rate=" << traffic_rate_bps;

  std::uint64_t h = fnv1a(0xcbf29ce484222325ull, os.str());
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace peering::tenant
