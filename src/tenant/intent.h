// The declarative tenant intent (ISSUE 9, §5 of the paper): everything an
// experiment asks of the platform — address space, announcement scope per
// PoP and peer class, policy knobs (prepend/communities), ADD-PATH needs,
// and capability grants — in one document. The intent never names concrete
// artifacts (tap devices, netlink routes, filter text); the IntentCompiler
// lowers it into those, and the TenantOrchestrator applies the result
// transactionally across the fleet. Intents are value types: equal intents
// compile to byte-identical artifacts, which is what makes amends diffable
// and fleet state reproducible.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "enforce/capabilities.h"
#include "netbase/prefix.h"
#include "netbase/result.h"
#include "platform/configdb.h"
#include "platform/model.h"

namespace peering::tenant {

/// Announcement scope at one PoP: which classes of interconnect the
/// tenant's routes may be exported to there. An empty class set means
/// every class at that PoP.
struct PopScope {
  std::string pop_id;
  std::set<platform::InterconnectType> peer_classes;

  bool allows(platform::InterconnectType type) const {
    return peer_classes.empty() || peer_classes.count(type) > 0;
  }
};

/// One experiment-as-tenant, declaratively. Everything here is reviewable
/// intent; nothing is a platform artifact.
struct TenantIntent {
  std::string id;
  std::string description;
  std::string contact;

  /// Address space: either a pool request (allocated at approval) or an
  /// explicit admin assignment (controlled hijacks of platform space).
  int prefix_count = 1;
  std::vector<Ipv4Prefix> explicit_prefixes;

  /// Announcement scope. Empty = every PoP, every peer class.
  std::vector<PopScope> scopes;

  /// Policy knobs applied to every exported announcement.
  int prepend = 0;
  std::vector<bgp::Community> communities;

  /// Session shape: experiments normally take the full ADD-PATH fan-out.
  bool add_path = true;

  /// Capability grants (trimmed or expanded by the reviewer).
  std::set<enforce::Capability> capabilities;
  int max_poisoned_asns = 0;
  int max_communities = 0;
  int max_updates_per_day = 144;
  std::uint64_t traffic_rate_bps = 0;

  /// Structural validation against the platform model: non-empty id, a
  /// positive allocation request, known PoPs in every scope, and knobs
  /// consistent with the requested capabilities.
  Status validate(const platform::PlatformModel& model) const;

  /// The PoPs this tenant is provisioned at, ascending. Empty scopes
  /// resolve to every PoP in the model.
  std::vector<std::string> resolve_pops(
      const platform::PlatformModel& model) const;

  /// Scope entry for a PoP; nullptr when the intent has explicit scopes
  /// and none of them names `pop_id`.
  const PopScope* scope_for(const std::string& pop_id) const;

  /// The web-form proposal this intent files with the config database.
  platform::ExperimentProposal to_proposal() const;

  /// Stable content fingerprint (FNV-1a over a canonical rendering).
  /// Equal intents — regardless of scope ordering — share a fingerprint.
  std::string fingerprint() const;
};

}  // namespace peering::tenant
