// The tenant orchestrator (ISSUE 9): the fleet-level transactional
// controller. Where platform::NetworkController reconciles ONE server, the
// orchestrator applies a compiled tenant across EVERY PoP it scopes with
// two-phase semantics — plan the per-PoP desired states first, then commit
// PoP by PoP; any per-server failure rolls the already-committed PoPs back
// to their previous applied state, so the fleet is never left split-brained
// between two tenant generations. Onboard/amend/remove are minimal-diff at
// the fleet level: a tenant's artifacts are stably keyed by tenant id (not
// position), so churning one tenant never touches another tenant's taps,
// routes, sessions, or grants. Lifecycle transitions flow through
// ConfigDatabase (propose → approve → activate → retire), and everything is
// observable: onboard latency, active-tenant gauge, rollback counters, and
// per-tenant announced-route gauges.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "enforce/control_policy.h"
#include "netbase/result.h"
#include "obs/metrics.h"
#include "platform/configdb.h"
#include "platform/controller.h"
#include "platform/netlink.h"
#include "tenant/compiler.h"
#include "tenant/intent.h"

namespace peering::platform {
class Peering;
}

namespace peering::tenant {

/// Outcome of one fleet-wide transaction.
struct FleetApplyReport {
  bool success = false;
  /// PoPs whose controller committed before the transaction resolved.
  int pops_committed = 0;
  /// Netlink mutations issued by the commits (excluding rollback work).
  int changes_applied = 0;
  /// True when a mid-fleet failure forced committed PoPs back.
  bool rolled_back = false;
  /// Undo failures during fleet rollback (each also bumps the obs counter).
  int rollback_failures = 0;
  std::string error;
};

/// What onboard/amend hand back on success.
struct TenantApplyResult {
  std::string tenant_id;
  std::string fingerprint;
  std::vector<std::string> pops;
  FleetApplyReport fleet;
};

class TenantOrchestrator {
 public:
  /// The database drives lifecycle and carries the platform model; it must
  /// outlive the orchestrator.
  explicit TenantOrchestrator(platform::ConfigDatabase* db);

  /// Brings one PoP under management: builds its netlink/controller pair
  /// and applies the tenantless baseline (lo, eth0, one policy rule per
  /// interconnect — mirroring templating's desired state). Pass an
  /// external enforcer to share a live platform's engine; otherwise the
  /// orchestrator owns one with the default rule chain.
  Status register_pop(const std::string& pop_id,
                      enforce::ControlPlaneEnforcer* external = nullptr);

  /// register_pop for every PoP in the model.
  Status register_all_pops();

  /// Binds a live platform: registers its PoPs against their real
  /// enforcement engines and wires the looking-glass tenant reporter.
  Status attach_platform(platform::Peering* platform);

  // --------------------------- tenant lifecycle ---------------------------

  /// Files, approves, activates, compiles, and transactionally applies a
  /// new tenant. On any failure the database record is retired, netlink
  /// state is rolled back fleet-wide, and no grant is installed.
  Result<TenantApplyResult> onboard(const TenantIntent& intent);

  /// Recompiles a live tenant under a changed intent and applies the diff
  /// across the union of old and new PoPs. On failure the previous intent,
  /// grants, and database record are restored.
  Result<TenantApplyResult> amend(const TenantIntent& intent);

  /// Removes a live tenant: fleet state is reconciled without it first;
  /// only then are its grants dropped and its record retired. A failed
  /// removal leaves the tenant fully intact.
  Status remove(const std::string& tenant_id);

  // ------------------------------ inspection ------------------------------

  const CompiledTenant* tenant(const std::string& id) const;
  std::vector<std::string> tenant_ids() const;
  std::size_t tenant_count() const { return tenants_.size(); }

  /// Looking-glass rendering of one tenant: compiled policy, active PoPs,
  /// announced prefixes. Empty-ish message for unknown tenants.
  std::string show_tenant(const std::string& id) const;

  /// One-line-per-tenant fleet summary plus lifecycle totals.
  std::string show_summary() const;

  /// Canonical digest of every PoP's full netlink state plus every
  /// enforcer's grants. Two fleets with identical state share the digest —
  /// the property the remove+rollback byte-identity self-checks gate on.
  std::string fleet_state_fingerprint() const;

  /// Test/bench access to a managed PoP's substrate.
  platform::NetlinkSim* netlink(const std::string& pop_id);
  enforce::ControlPlaneEnforcer* enforcer(const std::string& pop_id);

 private:
  struct PopState {
    std::string pop_id;
    std::unique_ptr<platform::NetlinkSim> netlink;
    std::unique_ptr<platform::NetworkController> controller;
    std::unique_ptr<enforce::ControlPlaneEnforcer> owned_enforcer;
    enforce::ControlPlaneEnforcer* enforcer = nullptr;
    platform::DesiredNetworkState baseline;
    /// Last state successfully committed — the fleet rollback target.
    platform::DesiredNetworkState applied;
  };

  /// Baseline + the deltas of every tenant in `tenants` scoped to `pop`,
  /// ascending tenant id (stable artifact order).
  platform::DesiredNetworkState desired_for(
      const PopState& pop,
      const std::map<std::string, CompiledTenant>& tenants) const;

  /// The two-phase fleet transaction: commits `tenants`' desired states to
  /// every managed PoP in ascending pop order; rolls committed PoPs back on
  /// failure.
  FleetApplyReport apply_fleet(
      const std::map<std::string, CompiledTenant>& tenants);

  void install_grants(const CompiledTenant& tenant);
  void drop_grants(const CompiledTenant& tenant);
  int allocate_tunnel_slot();

  platform::ConfigDatabase* db_;
  platform::Peering* platform_ = nullptr;
  std::map<std::string, PopState> pops_;
  std::map<std::string, CompiledTenant> tenants_;
  std::set<int> free_tunnel_slots_;
  int next_tunnel_slot_ = 0;

  obs::Registry* metrics_;
  obs::Counter* obs_onboards_;
  obs::Counter* obs_onboard_failures_;
  obs::Counter* obs_amends_;
  obs::Counter* obs_removes_;
  obs::Counter* obs_fleet_rollbacks_;
  obs::Counter* obs_fleet_rollback_failures_;
  obs::Gauge* obs_active_;
  obs::Histogram* obs_onboard_ops_;
  obs::Histogram* obs_onboard_wall_ns_;
};

}  // namespace peering::tenant
