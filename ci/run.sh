#!/usr/bin/env bash
# CI entry point: build the default (RelWithDebInfo) and asan-ubsan presets,
# run the full test suite on both, then regenerate the fig6a memory report
# and gate on the committed baseline (deterministic memory metrics only —
# timing metrics are too noisy for CI thresholds).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== configure + build: default preset ==="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "=== configure + build: asan-ubsan preset ==="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

echo "=== configure + build: tsan preset (concurrency suite only) ==="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" \
  --target exec_test concurrency_test pipeline_test update_group_test \
           mon_test fault_injection_test internet_soak_test

echo "=== ctest: default preset ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== ctest: asan-ubsan preset ==="
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "=== tsan: concurrency suite (races fail even on one core) ==="
# ThreadSanitizer checks happens-before relationships, not schedules, so a
# missing lock/atomic in the pipeline hot paths is caught regardless of how
# many cores the CI host has.
./build-tsan/tests/exec_test
./build-tsan/tests/concurrency_test
./build-tsan/tests/pipeline_test
# The update-group suite drives the parallel encode path (Phase B fans
# members across the scheduler), so it runs under tsan as well.
./build-tsan/tests/update_group_test
# The monitor taps the speaker across the pipeline's serial/parallel
# boundary; its byte-identity tests run the partitioned shapes under tsan.
./build-tsan/tests/mon_test
# The tenant-churn chaos case interleaves orchestrator transactions with the
# fault storm; under tsan it guards the control-plane/data-plane boundary.
./build-tsan/tests/fault_injection_test --gtest_filter='*TenantChurn*'
# The soak determinism test replays full-table churn through the {4,4}
# partitioned pipeline — the widest parallel surface in the repo — so its
# byte-identity comparison runs under tsan too.
./build-tsan/tests/internet_soak_test --gtest_filter='*PipelineShapes*'

echo "=== faults-soak: chaos scenarios under 3 fixed seeds, both presets ==="
# The chaos soak re-runs every fault scenario (and the flap-storm
# differential check) per seed; the asan-ubsan pass catches lifetime bugs in
# the sever/reconnect paths that a clean run would miss.
PEERING_SOAK_SEEDS="11,23,37" ./build/tests/fault_injection_test
PEERING_SOAK_SEEDS="11,23,37" ./build-asan/tests/fault_injection_test

echo "=== bench: fault recovery (self-checking determinism) ==="
# Exits non-zero if two same-seed runs diverge, so running it is the check.
(cd build/bench && ./bench_fault_recovery)

echo "=== bench regression gate: fig6a memory ==="
# The ablation cross-checks FibView vs RoutingTable LPM answers and exits
# non-zero below the 4x dedup target, so running it is itself a check.
(cd build/bench && ./bench_fig6a_memory --mode=both)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric fig6a_memory:with_dataplane_bytes_per_route:lower \
  --metric fig6a_memory:with_default_bytes_per_route:lower \
  --metric fig6a_memory:ablation_shared_bytes_per_route:lower \
  --metric fig6a_memory:ablation_dedup_factor:higher

echo "=== bench regression gate: fig6b + attr_flow (deterministic metrics) ==="
# Timing metrics are too noisy to gate; the telemetry counters and attribute
# pool statistics are pure functions of the seeded feeds, so they must match
# the committed baselines exactly.
(cd build/bench && ./bench_fig6b_cpu)
(cd build/bench && ./bench_attr_flow)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric fig6b_cpu:updates_per_measurement:exact \
  --metric fig6b_cpu:obs_updates_in:exact \
  --metric fig6b_cpu:obs_updates_out:exact \
  --metric fig6b_cpu:obs_fanout_exports:exact \
  --metric fig6b_cpu:obs_nh_rewrites:exact \
  --metric fig6b_cpu:mon_records:exact \
  --metric attr_flow:pool_size:exact \
  --metric attr_flow:intern_hit_rate:exact \
  --metric attr_flow:encode_hit_rate:exact

echo "=== bench regression gate: update-group fan-out ==="
# The binary self-checks that grouping reduces per-session export cost at
# 1000 sessions and that grouped/ungrouped send identical update counts
# (exits non-zero otherwise); the deterministic counters gate on baseline.
(cd build/bench && ./bench_fanout)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric fanout:sessions_grouped_1000:exact \
  --metric fanout:groups_grouped_1000:exact \
  --metric fanout:groups_ungrouped_1000:exact \
  --metric fanout:updates_sent_grouped_1000:exact \
  --metric fanout:updates_sent_ungrouped_1000:exact

echo "=== bench regression gate: monitoring plane ==="
# The binary exits non-zero if same-seed monitoring streams or
# looking-glass dumps differ between N=1 and N=4 pipeline workers, so
# running it is the byte-identity check. Record/byte counts and the
# propagation-latency percentiles are sim-time quantities — deterministic,
# gated exactly. It also snapshots the monitored run's Prometheus text,
# which the linter below validates.
(cd build/bench && ./bench_monitoring)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric monitoring:routes_injected:exact \
  --metric monitoring:station_records:exact \
  --metric monitoring:stream_bytes:exact \
  --metric monitoring:records_dropped:exact \
  --metric monitoring:locrib_samples:exact \
  --metric monitoring:e2e_locrib_p50_ns:exact \
  --metric monitoring:e2e_locrib_p90_ns:exact \
  --metric monitoring:e2e_locrib_p99_ns:exact \
  --metric monitoring:stream_identical_across_pipelines:exact

echo "=== prometheus exposition lint: monitored-run snapshot ==="
python3 tools/prom_lint.py build/bench/mon_metrics.prom

echo "=== bench regression gate: parallel convergence ==="
# The binary self-checks that every parallel run converges to exactly the
# serial reference state (exits non-zero on divergence). Deterministic
# metrics gate against the committed baseline everywhere; the wall-clock
# speedup floors (>= 1.6x at N=2, >= 2.5x at N=4) are meaningful only with
# real cores, so they arm conditionally on the host.
(cd build/bench && ./bench_parallel_convergence)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric parallel_convergence:routes_injected:exact \
  --metric parallel_convergence:locrib_paths:exact \
  --metric parallel_convergence:parallel_state_matches_serial:exact
if [ "$(nproc)" -ge 4 ]; then
  python3 tools/bench_check.py --fresh-dir build/bench \
    --min parallel_convergence:speedup_n2:1.6 \
    --min parallel_convergence:speedup_n4:2.5
else
  echo "  (skipping speedup floors: only $(nproc) core(s) on this host)"
fi

echo "=== bench regression gate: internet soak (scaled) ==="
# A scaled-down run of the internet-scale soak (full run: 1M routes x 13
# PoPs, see EXPERIMENTS.md). The binary self-checks quiescence and that the
# churned world's Loc-RIB at every PoP equals a fresh-converged reference
# (exits non-zero otherwise). Everything on the sim clock is deterministic
# and gates exactly — including the time-to-Loc-RIB percentiles. The MRAI
# batching efficiency gates as a floor, the memory accounting with the
# usual tolerance, and peak RSS against a hard ceiling (the committed
# number is a budget, not a measurement): a memory regression at soak scale
# fails CI even when every latency metric still passes.
# NOTE: the committed baseline corresponds to THIS invocation; regenerate
# it with the same flags after intentional changes.
(cd build/bench && ./bench_internet_soak --routes 50000 --pops 3 \
  --duration-s 120 --flaps 2)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric internet_soak:routes:exact \
  --metric internet_soak:pops:exact \
  --metric internet_soak:origins:exact \
  --metric internet_soak:distinct_attr_sets:exact \
  --metric internet_soak:churn_events:exact \
  --metric internet_soak:churn_announces:exact \
  --metric internet_soak:churn_withdraws:exact \
  --metric internet_soak:faults_scheduled:exact \
  --metric internet_soak:converged:exact \
  --metric internet_soak:post_churn_matches_reference:exact \
  --metric internet_soak:locrib_samples:exact \
  --metric internet_soak:fib_samples:exact \
  --metric internet_soak:ttl_p50_ns:exact \
  --metric internet_soak:ttl_p99_ns:exact \
  --metric internet_soak:ttf_p99_ns:exact \
  --metric internet_soak:mrai_flushes:exact \
  --metric internet_soak:mrai_peer_flushes:exact \
  --metric internet_soak:mrai_batch_mean:higher \
  --metric internet_soak:updates_out:exact \
  --metric internet_soak:full_resyncs:exact \
  --metric internet_soak:export_log_depth_p99:exact \
  --metric internet_soak:monitor_records:exact \
  --metric internet_soak:monitor_dropped:exact \
  --metric internet_soak:rib_memory_mb:lower \
  --metric internet_soak:fib_memory_mb:lower \
  --metric internet_soak:peak_rss_mb:max

echo "=== bench regression gate: tenant lifecycle ==="
# The binary self-checks 1000 clean onboards, byte-identical mid-fleet
# rollback, byte-identical remove, and the <=1.10 steady-state per-update
# overhead bound (exits non-zero on any of them). The fleet totals are pure
# functions of the seeded intent stream, so they gate exactly; the
# onboarding wall-clock percentiles are recorded in the JSON but not gated.
(cd build/bench && ./bench_tenant_lifecycle)
python3 tools/bench_check.py --fresh-dir build/bench \
  --metric tenant_lifecycle:tenants_onboarded:exact \
  --metric tenant_lifecycle:onboard_failures:exact \
  --metric tenant_lifecycle:fleet_pops:exact \
  --metric tenant_lifecycle:total_netlink_mutations:exact \
  --metric tenant_lifecycle:grants_installed:exact \
  --metric tenant_lifecycle:fleet_fingerprint_bytes:exact \
  --metric tenant_lifecycle:rollback_restores_state:exact \
  --metric tenant_lifecycle:remove_restores_state:exact \
  --metric tenant_lifecycle:overhead_within_bound:exact

echo "=== prometheus exposition lint: tenant-instrumented snapshot ==="
# 1000 per-tenant label values overflow the 256-series cardinality cap; the
# collapsed exposition must still lint clean.
python3 tools/prom_lint.py build/bench/tenant_metrics.prom

echo "=== bench coverage: every baselined bench emitted fresh JSON ==="
# A bench that silently stops writing its report would otherwise pass all
# the per-metric gates above by vacuous success.
python3 tools/bench_check.py --fresh-dir build/bench --require-all-baselines

echo "=== CI: all green ==="
