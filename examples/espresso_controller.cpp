// The X2 scenario from Figure 1: a sophisticated routing-control system
// (in the spirit of Google's Espresso / Facebook's Edge Fabric, §7.2)
// running as a PEERING experiment. The controller:
//
//   * learns every available egress for its destination via ADD-PATH;
//   * actively probes path quality through each egress neighbor, steering
//     probes per-packet with the virtual next-hop mechanism;
//   * programs the best egress into its forwarding table and re-optimizes
//     when the path degrades — all with standard BGP + ARP, no
//     configuration changes at the PoP router (the point of vBGP).
//
// Run: ./build/examples/espresso_controller
#include <cstdio>
#include <optional>

#include "example_util.h"
#include "platform/peering.h"
#include "toolkit/client.h"

using namespace peering;
using examples::check;

namespace {

Ipv4Prefix pfx(const std::string& s) { return *Ipv4Prefix::parse(s); }

platform::PlatformModel model_with_three_neighbors() {
  platform::PlatformModel model;
  model.resources = platform::NumberedResources::peering_defaults();
  platform::PopModel pop;
  pop.id = "edge01";
  pop.location = "Edge PoP";
  pop.type = platform::PopType::kIxp;
  pop.interconnects.push_back(
      {"transit-a", 65001, platform::InterconnectType::kTransit, 1});
  pop.interconnects.push_back(
      {"peer-b", 65002, platform::InterconnectType::kBilateralPeer, 2});
  pop.interconnects.push_back(
      {"peer-c", 65003, platform::InterconnectType::kBilateralPeer, 3});
  model.pops[pop.id] = pop;
  return model;
}

/// The destination network as reachable behind one neighbor: an extra hop
/// over a link whose latency models that neighbor's path quality.
struct DestinationSite {
  std::unique_ptr<sim::Link> link;
  std::unique_ptr<ip::Host> host;
};

DestinationSite attach_destination(sim::EventLoop* loop,
                                   platform::NeighborRuntime& nb, int index,
                                   Duration path_latency) {
  DestinationSite site;
  sim::LinkConfig config;
  config.latency = path_latency;
  site.link = std::make_unique<sim::Link>(loop, config);

  Ipv4Address nb_side(10, 200, static_cast<std::uint8_t>(index), 1);
  Ipv4Address dest_side(10, 200, static_cast<std::uint8_t>(index), 2);
  nb.host->add_attached_interface("down",
                                  MacAddress::from_id(0x810000u + index),
                                  {nb_side, 24}, *site.link, true);
  nb.host->set_forwarding(true);
  nb.host->routes().insert(
      ip::Route{pfx("203.0.113.0/24"), dest_side,
                nb.host->interface_count() - 1, 0});

  std::string host_name = "dest";
  host_name += std::to_string(index);
  site.host = std::make_unique<ip::Host>(loop, host_name);
  auto& nif = site.host->add_interface(
      "eth0", MacAddress::from_id(0x820000u + index));
  nif.add_address({Ipv4Address(203, 0, 113, 1), 24});
  nif.add_address({dest_side, 24});
  nif.attach(*site.link, false);
  site.host->routes().insert(ip::Route{pfx("10.200.0.0/16"), Ipv4Address(), 0, 0});
  site.host->routes().insert(
      ip::Route{Ipv4Prefix(Ipv4Address(), 0), nb_side, 0, 0});
  return site;
}

/// A minimal egress controller: probes each candidate egress and installs
/// the fastest.
class EgressController {
 public:
  EgressController(toolkit::ExperimentClient* client,
                   platform::Peering* platform)
      : client_(client), platform_(platform) {}

  void optimize(const Ipv4Prefix& dest, Ipv4Address probe_target) {
    auto views = client_->routes(dest);
    std::printf("  %zu candidate egresses for %s\n", views.size(),
                dest.str().c_str());

    std::string best_neighbor = "(none)";
    Ipv4Address best_nh;
    Duration best_rtt = Duration::hours(1);
    for (const auto& view : views) {
      Duration rtt = probe_via(dest, view, probe_target);
      std::printf("    via %-10s rtt %6.1f ms\n", view.neighbor_name.c_str(),
                  rtt.to_seconds() * 1000);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best_neighbor = view.neighbor_name;
        best_nh = view.virtual_next_hop;
      }
    }
    check(client_->select_egress(dest, "edge01", best_nh));
    std::printf("  -> programmed egress via %s (%.1f ms)\n",
                best_neighbor.c_str(), best_rtt.to_seconds() * 1000);
  }

 private:
  Duration probe_via(const Ipv4Prefix& dest, const toolkit::RouteView& view,
                     Ipv4Address target) {
    check(client_->select_egress(dest, "edge01", view.virtual_next_hop));
    SimTime sent = platform_->loop()->now();
    std::optional<Duration> rtt;
    client_->host().on_packet([&](const ip::Ipv4Packet& packet, int,
                                  const ether::EthernetFrame&) {
      auto msg = ip::IcmpMessage::decode(packet.payload);
      if (msg && msg->type == ip::IcmpType::kEchoReply && !rtt)
        rtt = platform_->loop()->now() - sent;
    });
    client_->host().ping(target, 1, seq_++);
    platform_->settle(Duration::seconds(2));
    client_->host().on_packet(nullptr);
    return rtt.value_or(Duration::hours(1));
  }

  toolkit::ExperimentClient* client_;
  platform::Peering* platform_;
  std::uint16_t seq_ = 1;
};

}  // namespace

int main() {
  std::printf("== Espresso-style egress controller on PEERING ==\n\n");

  sim::EventLoop loop;
  platform::ConfigDatabase db(model_with_three_neighbors());
  platform::PeeringOptions options;
  options.max_live_neighbors_per_pop = 3;
  platform::Peering peering(&loop, &db, options);
  peering.build();
  peering.settle();

  // All three neighbors announce the destination; the path quality behind
  // each differs (peer-b fastest, transit-a mid, peer-c congested).
  auto* pop = peering.pop("edge01");
  Duration path_latency[3] = {Duration::millis(12), Duration::millis(3),
                              Duration::millis(45)};
  std::vector<DestinationSite> sites;
  for (int i = 0; i < 3; ++i) {
    auto& nb = *pop->neighbors[static_cast<std::size_t>(i)];
    inet::FeedRoute route;
    route.prefix = pfx("203.0.113.0/24");
    route.attrs.as_path = bgp::AsPath({nb.model.asn, 64999});
    check(peering.feed_routes("edge01", static_cast<std::size_t>(i), {route}));
    sites.push_back(attach_destination(&loop, nb, i, path_latency[i]));
  }
  peering.settle();

  platform::ExperimentProposal proposal;
  proposal.id = "espresso";
  proposal.description = "egress engineering controller";
  proposal.requested_prefixes = 1;
  check(db.propose_experiment(proposal));
  check(db.approve_experiment("espresso"));

  toolkit::ExperimentClient client(&loop, "espresso");
  check(client.open_tunnel(peering, "edge01"));
  check(client.start_bgp("edge01"));
  peering.settle();
  std::printf("[controller] connected: %s", client.bgp_status().c_str());

  EgressController controller(&client, &peering);
  std::printf("\n[controller] optimizing egress for 203.0.113.0/24\n");
  controller.optimize(pfx("203.0.113.0/24"), Ipv4Address(203, 0, 113, 1));

  std::printf("\n[event] peer-b (current best) withdraws the route\n");
  pop->neighbors[1]->speaker->withdraw_originated(pfx("203.0.113.0/24"));
  peering.settle();
  std::printf("[controller] re-optimizing\n");
  controller.optimize(pfx("203.0.113.0/24"), Ipv4Address(203, 0, 113, 1));

  std::printf("\ndone: per-packet egress control with standard BGP+ARP only.\n");
  return 0;
}
