// Appendix A: debugging route propagation. A PEERING announcement is not
// globally reachable because some network's filters are out of date. The
// operators' workflow, reproduced:
//
//   1. notice the symptom: a region of the synthetic Internet never sees
//      the experiment prefix;
//   2. query looking glasses (restricted per-AS views) to bisect where the
//      route stops propagating;
//   3. get a candidate *adjacency* — looking glasses fundamentally cannot
//      distinguish "A did not export to B" from "B filtered the route
//      from A" (the ambiguity the appendix describes);
//   4. observe the dead end when the relevant ASes have no looking glass
//      ("debugging usually requires emailing our transit providers").
//
// Run: ./build/examples/debug_propagation
#include <cstdio>

#include "inet/debugging.h"

using namespace peering;
using inet::AsGraph;
using inet::FilteredEdge;
using inet::LookingGlassSet;

namespace {

std::string path_str(const std::vector<bgp::Asn>& path) {
  std::string out;
  for (bgp::Asn asn : path) {
    if (!out.empty()) out += " ";
    out += std::to_string(asn);
  }
  return out.empty() ? "(local)" : out;
}

}  // namespace

int main() {
  std::printf("== Debugging route propagation (Appendix A) ==\n\n");

  // A small Internet: PEERING (47065) buys transit from 3000 and 3001;
  // the rest of the world hangs off two tier-1s.
  AsGraph g;
  constexpr bgp::Asn kPeering = 47065;
  constexpr bgp::Asn kT1 = 100, kT2 = 101;  // tier-1 clique
  g.add_peering(kT1, kT2);
  g.add_provider(kPeering, 3000);
  g.add_provider(kPeering, 3001);
  g.add_provider(3000, kT1);
  g.add_provider(3001, kT2);
  // A distant region: regional transit 5000 under kT2, stubs 6001..6003.
  g.add_provider(5000, kT2);
  for (bgp::Asn stub : std::vector<bgp::Asn>{6001, 6002, 6003}) g.add_provider(stub, 5000);

  // Ground truth (unknown to the operators): AS5000's import filter was
  // never updated for PEERING's newest allocation, so routes from its
  // provider kT2 are dropped.
  std::set<FilteredEdge> hidden_reality{{kT2, 5000}};
  auto routes = inet::routes_to_filtered(g, kPeering, hidden_reality);

  std::printf("[symptom] reachability of the experiment prefix:\n");
  for (bgp::Asn asn : std::vector<bgp::Asn>{3000, 3001, kT1, kT2, 5000, 6001, 6002, 6003}) {
    auto it = routes.find(asn);
    std::printf("  AS%-6u %s\n", asn,
                it == routes.end() ? "NO ROUTE"
                                   : ("via [" + path_str(it->second.path) + "]").c_str());
  }

  // Operators only have looking glasses at some networks.
  std::printf("\n[step 1] looking glasses available at: 3000, 3001, %u, %u, "
              "5000, 6001\n", kT1, kT2);
  LookingGlassSet glasses(routes, {3000, 3001, kT1, kT2, 5000, 6001});

  auto diagnosis = inet::locate_filters(g, kPeering, glasses);
  std::printf("\n[step 2] automated filter localization:\n");
  for (const auto& [exporter, importer] : diagnosis.suspects) {
    std::printf("  suspect adjacency: AS%u -> AS%u\n", exporter, importer);
    std::printf("    (cannot disambiguate: AS%u not exporting vs AS%u "
                "filtering on import)\n", exporter, importer);
  }
  for (bgp::Asn asn : diagnosis.unexplained) {
    std::printf("  unexplained: AS%u has no route and no observable "
                "upstream -> email the transit provider\n", asn);
  }

  // With fewer looking glasses, the trail goes cold.
  std::printf("\n[step 3] same hunt with looking glasses only at 6001 and "
              "6002:\n");
  LookingGlassSet sparse(routes, {6001, 6002});
  auto cold = inet::locate_filters(g, kPeering, sparse);
  std::printf("  suspects found: %zu, unexplained: %zu\n",
              cold.suspects.size(), cold.unexplained.size());
  for (bgp::Asn asn : cold.unexplained)
    std::printf("  AS%u: dead end (its feeder AS5000 has no looking "
                "glass)\n", asn);

  // Fix the filter and verify convergence.
  std::printf("\n[step 4] AS5000 updates its filter; re-checking:\n");
  auto fixed = inet::routes_to_filtered(g, kPeering, {});
  bool all_reachable = true;
  for (bgp::Asn asn : std::vector<bgp::Asn>{5000, 6001, 6002, 6003})
    if (!fixed.count(asn)) all_reachable = false;
  std::printf("  region reachable: %s\n", all_reachable ? "yes" : "NO");

  std::printf("\ndone.\n");
  return 0;
}
