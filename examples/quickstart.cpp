// Quickstart: the full PEERING experience in one file.
//
//   1. stand up a two-PoP deployment (one IXP PoP with two neighbors, one
//      university PoP, a backbone circuit between them);
//   2. file and approve an experiment through the management database;
//   3. open the VPN tunnel and BGP session with the experiment toolkit;
//   4. observe *all* routes for a destination with virtual next-hops
//      (Figure 2a), pick an egress neighbor per packet (Figure 2b);
//   5. announce the experiment prefix to the Internet and withdraw it;
//   6. dump the telemetry snapshot the whole run accumulated.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "example_util.h"
#include "obs/metrics.h"
#include "platform/peering.h"
#include "toolkit/client.h"

using namespace peering;
using examples::check;

namespace {

Ipv4Prefix pfx(const std::string& s) { return *Ipv4Prefix::parse(s); }

platform::PlatformModel quickstart_model() {
  platform::PlatformModel model;
  model.resources = platform::NumberedResources::peering_defaults();

  platform::PopModel ixp;
  ixp.id = "demo-ixp01";
  ixp.location = "Demo-IX";
  ixp.type = platform::PopType::kIxp;
  ixp.on_backbone = true;
  ixp.interconnects.push_back(
      {"transit-alpha", 65001, platform::InterconnectType::kTransit, 1});
  ixp.interconnects.push_back(
      {"peer-beta", 65002, platform::InterconnectType::kBilateralPeer, 2});
  model.pops[ixp.id] = ixp;

  platform::PopModel uni;
  uni.id = "demo-uni01";
  uni.location = "Demo University";
  uni.type = platform::PopType::kUniversity;
  uni.on_backbone = true;
  uni.interconnects.push_back(
      {"campus-transit", 65003, platform::InterconnectType::kTransit, 3});
  model.pops[uni.id] = uni;
  return model;
}

}  // namespace

int main() {
  std::printf("== PEERING quickstart ==\n\n");

  // Telemetry: install the registry before building the platform so every
  // component constructed below registers its instruments with it.
  obs::Registry registry;
  obs::Scope obs_scope(&registry);
  sim::EventLoop loop;
  platform::ConfigDatabase db(quickstart_model());
  platform::Peering peering(&loop, &db);
  peering.build();
  peering.settle();
  std::printf("[platform] built %zu PoPs, %zu backbone circuits\n",
              peering.pop_ids().size(), peering.fabric().circuits().size());

  // Both IXP neighbors announce the same destination (the Figure 1 setup).
  inet::FeedRoute dest;
  dest.prefix = pfx("192.168.0.0/24");
  dest.attrs.as_path = bgp::AsPath({65001, 64999});
  check(peering.feed_routes("demo-ixp01", 0, {dest}));
  dest.attrs.as_path = bgp::AsPath({65002, 64999});
  check(peering.feed_routes("demo-ixp01", 1, {dest}));
  // Give each neighbor a host at the destination so pings terminate.
  auto* ixp = peering.pop("demo-ixp01");
  for (int i = 0; i < 2; ++i) {
    ixp->neighbors[static_cast<std::size_t>(i)]
        ->host->add_interface("stub", MacAddress::from_id(0x700000u + i))
        .add_address({Ipv4Address(192, 168, 0, 1), 24});
  }
  peering.settle();

  // --- experiment lifecycle (§4.6) ---
  platform::ExperimentProposal proposal;
  proposal.id = "quickstart";
  proposal.description = "hello, interdomain routing";
  proposal.contact = "you@university.edu";
  proposal.requested_prefixes = 1;
  check(db.propose_experiment(proposal));
  auto creds = db.approve_experiment("quickstart");
  if (!creds) {
    std::printf("approval failed: %s\n", creds.error().message.c_str());
    return 1;
  }
  std::printf("[db] experiment approved: ASN %u, allocation %s\n",
              creds->bgp_asn,
              db.experiment("quickstart")->allocated_prefixes[0].str().c_str());

  // --- toolkit: connect (Table 1) ---
  toolkit::ExperimentClient client(&loop, "quickstart");
  check(client.open_tunnel(peering, "demo-ixp01"));
  check(client.start_bgp("demo-ixp01"));
  peering.settle();
  std::printf("[toolkit] %s", client.bgp_status().c_str());

  // --- visibility: every path, with virtual next-hops (Figure 2a) ---
  std::printf("\nroutes for 192.168.0.0/24 as the experiment sees them:\n");
  auto views = client.routes(pfx("192.168.0.0/24"));
  for (const auto& view : views) {
    std::printf("  via %-12s next-hop %-12s as-path [%s]\n",
                view.neighbor_name.c_str(), view.virtual_next_hop.str().c_str(),
                view.as_path.str().c_str());
  }

  // --- per-packet egress control (Figure 2b) ---
  const toolkit::RouteView* via_beta = nullptr;
  for (const auto& view : views)
    if (view.neighbor_name == "peer-beta") via_beta = &view;
  int beta_count = 0, alpha_count = 0;
  ixp->neighbors[0]->host->on_packet(
      [&](const ip::Ipv4Packet&, int, const ether::EthernetFrame&) {
        ++alpha_count;
      });
  ixp->neighbors[1]->host->on_packet(
      [&](const ip::Ipv4Packet&, int, const ether::EthernetFrame&) {
        ++beta_count;
      });
  check(client.select_egress(pfx("192.168.0.0/24"), "demo-ixp01",
                             via_beta->virtual_next_hop));
  client.host().ping(Ipv4Address(192, 168, 0, 1), 1, 1);
  peering.settle(Duration::seconds(2));
  std::printf("\n[data plane] ping via peer-beta: alpha saw %d, beta saw %d\n",
              alpha_count, beta_count);

  // --- announce and withdraw ---
  Ipv4Prefix allocation = db.experiment("quickstart")->allocated_prefixes[0];
  check(client.announce(allocation).prepend(1).send());
  peering.settle();
  auto at_alpha = ixp->neighbors[0]->speaker->loc_rib().best(allocation);
  std::printf("\n[control plane] transit-alpha sees %s with as-path [%s]\n",
              allocation.str().c_str(),
              at_alpha ? at_alpha->attrs->as_path.str().c_str() : "nothing!");
  check(client.withdraw(allocation));
  peering.settle();
  at_alpha = ixp->neighbors[0]->speaker->loc_rib().best(allocation);
  std::printf("[control plane] after withdraw, transit-alpha sees: %s\n",
              at_alpha ? "still there?!" : "nothing (withdrawn)");

  // --- telemetry: what the run looked like, from one snapshot ---
  obs::Snapshot snap = registry.snapshot(loop.now());
  long long established = 0;
  for (const auto& s : snap.series) {
    if (s.name != "bgp_session_transitions_total") continue;
    for (const auto& [key, value] : s.labels)
      if (key == "state" && value == "Established") established += s.value;
  }
  std::printf("\n[telemetry] %zu series; platform-wide totals: %lld updates "
              "in, %lld updates out, %lld session establishments\n",
              snap.series.size(),
              static_cast<long long>(snap.total("bgp_updates_in_total")),
              static_cast<long long>(snap.total("bgp_updates_out_total")),
              established);
  std::printf("[telemetry] demo-ixp01 router: %lld frames demuxed, %lld "
              "virtual-ARP replies, %lld next-hop rewrites\n",
              static_cast<long long>(snap.total("vbgp_frames_demuxed_total")),
              static_cast<long long>(
                  snap.total("vbgp_arp_virtual_replies_total")),
              static_cast<long long>(snap.total("vbgp_nh_rewrites_total")));
  std::printf("[telemetry] enforcement verdicts: %lld accepted, %lld "
              "rejected\n",
              static_cast<long long>(snap.value("enforce_verdicts_total",
                                                {{"action", "accept"}})),
              static_cast<long long>(snap.value("enforce_verdicts_total",
                                                {{"action", "reject"}})));

  std::printf("\nquickstart complete.\n");
  return 0;
}
