// Prints the PEERING deployment report (§4.2): thirteen PoPs, numbered
// resources, per-IXP peer counts, peer-type mix, and the size of the
// generated per-PoP configuration — the platform's "state of the testbed"
// summary.
//
// Run: ./build/examples/footprint_report
#include <cstdio>

#include "platform/footprint.h"
#include "platform/templating.h"

using namespace peering;

int main() {
  platform::PlatformModel model = platform::build_footprint();
  platform::FootprintSummary summary = platform::summarize(model);

  std::printf("== PEERING footprint (as of the CoNEXT'19 paper) ==\n\n");

  std::printf("numbered resources: %zu ASNs, %zu IPv4 /24s, IPv6 %s\n",
              model.resources.asns.size(), model.resources.prefix_pool.size(),
              model.resources.v6_allocation.str().c_str());
  std::printf("PoPs: %zu (%zu IXP, %zu university)\n", summary.pop_count,
              summary.ixp_pops, summary.university_pops);
  std::printf("transit interconnections: %zu\n", summary.transit_interconnects);
  std::printf("unique peers: %zu (%zu bilateral, %zu route-server only)\n\n",
              summary.unique_peers, summary.bilateral_peers,
              summary.route_server_peers);

  std::printf("%-14s %-28s %-11s %9s %10s %8s %9s\n", "pop", "location",
              "type", "transits", "bilateral", "rs", "backbone");
  for (const auto& [id, pop] : model.pops) {
    std::size_t bilateral = 0, rs = 0;
    for (const auto& ic : pop.interconnects) {
      if (ic.type == platform::InterconnectType::kBilateralPeer) ++bilateral;
      if (ic.type == platform::InterconnectType::kRouteServer) ++rs;
    }
    std::printf("%-14s %-28s %-11s %9zu %10zu %8zu %9s\n", id.c_str(),
                pop.location.c_str(), platform::pop_type_name(pop.type),
                pop.transit_count(), bilateral, rs,
                pop.on_backbone ? "yes" : "no");
  }

  platform::PeerTypeMix mix;
  std::printf("\npeer types (PeeringDB, §4.2): %.0f%% transit providers, "
              "%.0f%% cable/DSL/ISP, %.0f%% content, %.0f%% unclassified, "
              "%.0f%% other\n",
              mix.transit_provider * 100, mix.access_isp * 100,
              mix.content * 100, mix.unclassified * 100, mix.other * 100);

  std::printf("\ngenerated configuration sizes (intent -> services, §5):\n");
  for (const auto& [id, pop] : model.pops) {
    auto configs = platform::generate_pop_configs(model, id);
    std::printf("  %-14s bird.conf %6zu lines, %4zu routing rules/tables\n",
                id.c_str(), configs.bird_line_count(),
                configs.network.rules.size());
  }
  return 0;
}
