// Prints the PEERING deployment report (§4.2): thirteen PoPs, numbered
// resources, per-IXP peer counts, peer-type mix, and the size of the
// generated per-PoP configuration — the platform's "state of the testbed"
// summary.
//
// Run: ./build/examples/footprint_report
#include <cstdio>

#include "obs/metrics.h"
#include "platform/footprint.h"
#include "platform/templating.h"

using namespace peering;

int main() {
  platform::PlatformModel model = platform::build_footprint();
  platform::FootprintSummary summary = platform::summarize(model);

  // Publish the summary into a registry and render from the snapshot: the
  // report doubles as a smoke test of the obs snapshot API.
  obs::Registry registry;
  auto i64 = [](std::size_t v) { return static_cast<std::int64_t>(v); };
  registry.gauge("footprint_asns")->set(i64(model.resources.asns.size()));
  registry.gauge("footprint_ipv4_slash24s")
      ->set(i64(model.resources.prefix_pool.size()));
  registry.gauge("footprint_pops")->set(i64(summary.pop_count));
  registry.gauge("footprint_pops", {{"type", "ixp"}})
      ->set(i64(summary.ixp_pops));
  registry.gauge("footprint_pops", {{"type", "university"}})
      ->set(i64(summary.university_pops));
  registry.gauge("footprint_transit_interconnects")
      ->set(i64(summary.transit_interconnects));
  registry.gauge("footprint_unique_peers")->set(i64(summary.unique_peers));
  registry.gauge("footprint_unique_peers", {{"kind", "bilateral"}})
      ->set(i64(summary.bilateral_peers));
  registry.gauge("footprint_unique_peers", {{"kind", "route-server"}})
      ->set(i64(summary.route_server_peers));
  for (const auto& [id, pop] : model.pops) {
    std::size_t bilateral = 0, rs = 0;
    for (const auto& ic : pop.interconnects) {
      if (ic.type == platform::InterconnectType::kBilateralPeer) ++bilateral;
      if (ic.type == platform::InterconnectType::kRouteServer) ++rs;
    }
    registry.gauge("footprint_pop_transits", {{"pop", id}})
        ->set(i64(pop.transit_count()));
    registry.gauge("footprint_pop_bilateral_peers", {{"pop", id}})
        ->set(i64(bilateral));
    registry.gauge("footprint_pop_route_server_peers", {{"pop", id}})
        ->set(i64(rs));
  }
  obs::Snapshot snap = registry.snapshot();

  std::printf("== PEERING footprint (as of the CoNEXT'19 paper) ==\n\n");

  std::printf("numbered resources: %lld ASNs, %lld IPv4 /24s, IPv6 %s\n",
              static_cast<long long>(snap.value("footprint_asns")),
              static_cast<long long>(snap.value("footprint_ipv4_slash24s")),
              model.resources.v6_allocation.str().c_str());
  std::printf("PoPs: %lld (%lld IXP, %lld university)\n",
              static_cast<long long>(snap.value("footprint_pops")),
              static_cast<long long>(
                  snap.value("footprint_pops", {{"type", "ixp"}})),
              static_cast<long long>(
                  snap.value("footprint_pops", {{"type", "university"}})));
  std::printf("transit interconnections: %lld\n",
              static_cast<long long>(
                  snap.value("footprint_transit_interconnects")));
  std::printf("unique peers: %lld (%lld bilateral, %lld route-server only)\n\n",
              static_cast<long long>(snap.value("footprint_unique_peers")),
              static_cast<long long>(snap.value("footprint_unique_peers",
                                                {{"kind", "bilateral"}})),
              static_cast<long long>(snap.value("footprint_unique_peers",
                                                {{"kind", "route-server"}})));

  std::printf("%-14s %-28s %-11s %9s %10s %8s %9s\n", "pop", "location",
              "type", "transits", "bilateral", "rs", "backbone");
  for (const auto& [id, pop] : model.pops) {
    obs::Labels labels{{"pop", id}};
    std::printf("%-14s %-28s %-11s %9lld %10lld %8lld %9s\n", id.c_str(),
                pop.location.c_str(), platform::pop_type_name(pop.type),
                static_cast<long long>(
                    snap.value("footprint_pop_transits", labels)),
                static_cast<long long>(
                    snap.value("footprint_pop_bilateral_peers", labels)),
                static_cast<long long>(
                    snap.value("footprint_pop_route_server_peers", labels)),
                pop.on_backbone ? "yes" : "no");
  }

  platform::PeerTypeMix mix;
  std::printf("\npeer types (PeeringDB, §4.2): %.0f%% transit providers, "
              "%.0f%% cable/DSL/ISP, %.0f%% content, %.0f%% unclassified, "
              "%.0f%% other\n",
              mix.transit_provider * 100, mix.access_isp * 100,
              mix.content * 100, mix.unclassified * 100, mix.other * 100);

  std::printf("\ngenerated configuration sizes (intent -> services, §5):\n");
  for (const auto& [id, pop] : model.pops) {
    auto configs = platform::generate_pop_configs(model, id);
    std::printf("  %-14s bird.conf %6zu lines, %4zu routing rules/tables\n",
                id.c_str(), configs.bird_line_count(),
                configs.network.rules.size());
  }

  std::printf("\nsnapshot exposition (Prometheus text, first lines):\n");
  std::string prom = snap.to_prometheus();
  std::size_t pos = 0;
  for (int line = 0; line < 6 && pos < prom.size(); ++line) {
    std::size_t end = prom.find('\n', pos);
    std::printf("  %s\n", prom.substr(pos, end - pos).c_str());
    pos = end + 1;
  }
  std::printf("  ... (%zu series total)\n", snap.series.size());
  return 0;
}
