// A controlled hijack study, after the ARTEMIS evaluation on PEERING
// (Sermpezis et al. [83], §7.1): a victim experiment announces its prefix,
// an attacker experiment — admin-assigned the same PEERING-owned prefix —
// hijacks it from another PoP, a route collector observes the MOAS event,
// the detector raises an alert within seconds, and the victim mitigates by
// deaggregating.
//
// Run: ./build/examples/hijack_detection
#include <cstdio>

#include "example_util.h"
#include "platform/artemis.h"
#include "platform/peering.h"
#include "toolkit/client.h"

using namespace peering;
using examples::check;

namespace {

platform::PlatformModel two_island_model() {
  platform::PlatformModel model;
  model.resources = platform::NumberedResources::peering_defaults();
  for (const char* id : {"pop-east", "pop-west"}) {
    platform::PopModel pop;
    pop.id = id;
    pop.type = platform::PopType::kIxp;
    pop.interconnects.push_back({std::string(id) + "-transit", 65001,
                                 platform::InterconnectType::kTransit,
                                 id[4] == 'e' ? 1u : 2u});
    model.pops[id] = pop;
  }
  return model;
}

}  // namespace

int main() {
  std::printf("== Controlled hijack + ARTEMIS-style detection ==\n\n");

  sim::EventLoop loop;
  platform::ConfigDatabase db(two_island_model());
  platform::Peering peering(&loop, &db);
  peering.build();
  peering.settle();

  // A collector peers with both transits (a RouteViews stand-in).
  platform::RouteCollector collector(&loop, "collector", 6447,
                                     Ipv4Address(9, 9, 9, 9));
  for (const char* pop_id : {"pop-east", "pop-west"}) {
    auto* transit = peering.pop(pop_id)->neighbors[0].get();
    bgp::PeerId at_collector =
        collector.add_feed(std::string(pop_id) + "-transit", 65001);
    bgp::PeerId at_transit =
        transit->speaker->add_peer({.name = "collector", .peer_asn = 6447});
    auto streams = sim::StreamChannel::make(&loop, Duration::millis(1));
    collector.connect(at_collector, streams.a);
    transit->speaker->connect_peer(at_transit, streams.b);
  }
  peering.settle();

  // Victim.
  platform::ExperimentProposal vp;
  vp.id = "victim";
  vp.requested_prefixes = 1;
  check(db.propose_experiment(vp));
  check(db.approve_experiment("victim"));
  toolkit::ExperimentClient victim(&loop, "victim");
  check(victim.open_tunnel(peering, "pop-east"));
  check(victim.start_bgp("pop-east"));
  peering.settle();
  Ipv4Prefix target = db.experiment("victim")->allocated_prefixes[0];
  bgp::Asn victim_asn = db.experiment("victim")->asn;
  check(victim.announce(target).send());
  peering.settle();
  std::printf("[victim] announced %s (origin AS%u) at pop-east\n",
              target.str().c_str(), victim_asn);

  platform::HijackDetector detector({target}, {47065, victim_asn});
  detector.poll(collector);
  std::printf("[artemis] monitoring %s: %zu alerts (expected: 0)\n",
              target.str().c_str(), detector.alerts().size());

  // Attacker: a second experiment, admin-assigned the SAME prefix for a
  // controlled hijack of PEERING's own space.
  platform::ExperimentProposal ap;
  ap.id = "attacker";
  ap.requested_prefixes = 1;
  check(db.propose_experiment(ap));
  check(db.approve_experiment("attacker"));
  check(db.assign_prefixes("attacker", {target}));
  toolkit::ExperimentClient attacker(&loop, "attacker");
  check(attacker.open_tunnel(peering, "pop-west"));
  check(attacker.start_bgp("pop-west"));
  peering.settle();
  SimTime t0 = loop.now();
  check(attacker.announce(target).send());
  peering.settle();
  std::printf("\n[attacker] announced %s (origin AS%u) at pop-west\n",
              target.str().c_str(), db.experiment("attacker")->asn);

  detector.poll(collector);
  if (detector.alerts().empty()) {
    std::printf("[artemis] FAILED to detect the hijack!\n");
    return 1;
  }
  const auto& alert = detector.alerts().front();
  std::printf("[artemis] ALERT after %.1f s: MOAS on %s — offending origin "
              "AS%u via feed %s\n",
              (alert.at - t0).to_seconds(), alert.announced.str().c_str(),
              alert.offending_origin, alert.feed.c_str());

  // Mitigation: deaggregate.
  auto mitigation = detector.mitigation_prefixes(alert);
  std::printf("\n[victim] mitigating with more-specifics:");
  for (const auto& prefix : mitigation) {
    std::printf(" %s", prefix.str().c_str());
    check(victim.announce(prefix).send());
  }
  std::printf("\n");
  peering.settle();

  bool mitigated = true;
  for (const auto& prefix : mitigation) {
    auto paths = collector.visible_paths(prefix);
    if (paths.empty() || paths[0].origin_asn() != victim_asn)
      mitigated = false;
  }
  std::printf("[artemis] more-specifics visible with the victim origin: %s\n",
              mitigated ? "yes — traffic pulled back via LPM" : "NO");

  std::printf("\ndone.\n");
  return 0;
}
