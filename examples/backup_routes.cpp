// The X1 scenario from Figure 1 (after Anwar et al., IMC'15 — one of the
// studies the paper highlights): uncovering routes and routing policies
// that are invisible to passive measurement, by actively manipulating
// announcements.
//
// A synthetic Internet (Gao-Rexford policies) is attached behind the PoP's
// neighbors. The experiment then:
//   1. observes the default route choice of a remote AS toward its prefix;
//   2. uses selective announcements (whitelist communities) to reveal,
//      one neighbor at a time, which paths each neighbor's customers
//      would use — "hidden" backup routes;
//   3. uses AS-path poisoning to force a remote AS off its preferred path
//      and observe its next choice, inferring preference order.
//
// Run: ./build/examples/backup_routes
#include <cstdio>

#include "example_util.h"
#include "inet/topology.h"
#include "platform/peering.h"
#include "toolkit/client.h"

using namespace peering;
using examples::check;

namespace {

platform::PlatformModel two_transit_model() {
  platform::PlatformModel model;
  model.resources = platform::NumberedResources::peering_defaults();
  platform::PopModel pop;
  pop.id = "probe01";
  pop.location = "Probe PoP";
  pop.type = platform::PopType::kIxp;
  pop.interconnects.push_back(
      {"transit-t1", 65001, platform::InterconnectType::kTransit, 1});
  pop.interconnects.push_back(
      {"transit-t2", 65002, platform::InterconnectType::kTransit, 2});
  model.pops[pop.id] = pop;
  return model;
}

/// What route does `observer` pick toward the experiment prefix, given the
/// set of PEERING transits currently receiving the announcement? We model
/// the remote decision with the Gao-Rexford graph: the observer prefers
/// customer > peer > provider routes, then shortest path — through
/// whichever of t1/t2 has the announcement.
struct RemoteView {
  bool reachable = false;
  std::vector<bgp::Asn> path;  // from observer to the PEERING transit
};

RemoteView observe(const inet::AsGraph& graph, bgp::Asn observer,
                   const std::vector<bgp::Asn>& announced_transits,
                   const std::vector<bgp::Asn>& poisoned = {}) {
  RemoteView best;
  for (bgp::Asn transit : announced_transits) {
    auto routes = graph.routes_to(transit);
    auto it = routes.find(observer);
    if (it == routes.end()) continue;
    // Poisoning: if any poisoned AS appears on the path (or is the
    // observer), loop detection discards the route.
    bool dropped = false;
    for (bgp::Asn p : poisoned) {
      if (observer == p) dropped = true;
      for (bgp::Asn hop : it->second.path)
        if (hop == p) dropped = true;
    }
    if (dropped) continue;
    std::vector<bgp::Asn> path = it->second.path;
    if (path.empty() || path.back() != transit) path.push_back(transit);
    if (!best.reachable || path.size() < best.path.size()) {
      best.reachable = true;
      best.path = path;
    }
  }
  return best;
}

std::string path_str(const std::vector<bgp::Asn>& path) {
  std::string out;
  for (bgp::Asn asn : path) {
    if (!out.empty()) out += " ";
    out += std::to_string(asn);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Uncovering hidden routes with controlled announcements ==\n\n");

  // A synthetic Internet whose tier-2 ASes 65001/65002 are PEERING's
  // transits.
  inet::AsGraph graph;
  constexpr bgp::Asn kT1 = 65001, kT2 = 65002;
  constexpr bgp::Asn kTier1A = 100, kTier1B = 101;
  constexpr bgp::Asn kObserver = 64999;  // a remote stub AS we reason about
  graph.add_provider(kT1, kTier1A);
  graph.add_provider(kT2, kTier1B);
  graph.add_peering(kTier1A, kTier1B);
  graph.add_provider(kObserver, kTier1A);
  // The observer is also a customer of a regional AS that buys from T2:
  graph.add_provider(64998, kT2);
  graph.add_provider(kObserver, 64998);

  // The live platform: attach, announce, and verify the data path works.
  sim::EventLoop loop;
  platform::ConfigDatabase db(two_transit_model());
  platform::Peering peering(&loop, &db);
  peering.build();
  peering.settle();

  platform::ExperimentProposal proposal;
  proposal.id = "backup-routes";
  proposal.description = "reverse-engineering routing policies";
  proposal.requested_prefixes = 1;
  proposal.requested_capabilities = {enforce::Capability::kAsPathPoisoning};
  proposal.requested_poisoned_asns = 2;
  check(db.propose_experiment(proposal));
  check(db.approve_experiment("backup-routes"));

  toolkit::ExperimentClient client(&loop, "backup-routes");
  check(client.open_tunnel(peering, "probe01"));
  check(client.start_bgp("probe01"));
  peering.settle();
  Ipv4Prefix allocation = db.experiment("backup-routes")->allocated_prefixes[0];

  std::uint16_t t1_id = 0, t2_id = 0;
  for (const auto& nb : client.neighbors("probe01")) {
    if (nb.name == "transit-t1") t1_id = nb.local_id;
    if (nb.name == "transit-t2") t2_id = nb.local_id;
  }

  // --- Step 1: announce everywhere (baseline). ---
  check(client.announce(allocation).send());
  peering.settle();
  auto baseline = observe(graph, kObserver, {kT1, kT2});
  std::printf("[1] baseline (announced via both transits):\n");
  std::printf("    AS%u routes via [%s] <- its visible 'best' path\n",
              kObserver, path_str(baseline.path).c_str());

  // --- Step 2: selective announcements reveal per-transit paths. ---
  std::printf("\n[2] selective announcements (whitelist communities):\n");
  check(client.announce(allocation).announce_to(t1_id).send());
  peering.settle();
  auto* pop = peering.pop("probe01");
  bool t1_has = pop->neighbors[0]->speaker->loc_rib().best(allocation).has_value();
  bool t2_has = pop->neighbors[1]->speaker->loc_rib().best(allocation).has_value();
  std::printf("    announce-to(t1): t1 sees it: %s, t2 sees it: %s\n",
              t1_has ? "yes" : "no", t2_has ? "yes" : "no");
  auto via_t1 = observe(graph, kObserver, {kT1});
  std::printf("    AS%u's path when only t1 carries the prefix: [%s]\n",
              kObserver, path_str(via_t1.path).c_str());

  check(client.announce(allocation).announce_to(t2_id).send());
  peering.settle();
  auto via_t2 = observe(graph, kObserver, {kT2});
  std::printf("    AS%u's HIDDEN backup path via t2: [%s]\n", kObserver,
              path_str(via_t2.path).c_str());
  std::printf("    (invisible to route collectors while the t1 path is "
              "preferred)\n");

  // --- Step 3: poisoning forces the remote AS off a path. ---
  std::printf("\n[3] AS-path poisoning (capability granted: 2 ASNs):\n");
  check(client.announce(allocation).poison(kTier1A).send());
  peering.settle();
  bool announced = pop->neighbors[0]
                       ->speaker->loc_rib()
                       .best(allocation)
                       .has_value();
  std::printf("    poisoned announcement accepted by the platform: %s\n",
              announced ? "yes" : "no");
  auto poisoned_view = observe(graph, kObserver, {kT1, kT2}, {kTier1A});
  std::printf("    with AS%u poisoned, AS%u falls back to [%s]\n", kTier1A,
              kObserver, path_str(poisoned_view.path).c_str());
  std::printf("    -> preference order inferred: [%s] then [%s]\n",
              path_str(baseline.path).c_str(),
              path_str(poisoned_view.path).c_str());

  // --- Step 4: the same poison without the capability is blocked. ---
  std::printf("\n[4] safety: a second experiment without the poisoning "
              "capability tries the same:\n");
  platform::ExperimentProposal p2;
  p2.id = "no-poison";
  p2.requested_prefixes = 1;
  check(db.propose_experiment(p2));
  check(db.approve_experiment("no-poison"));
  toolkit::ExperimentClient other(&loop, "no-poison");
  check(other.open_tunnel(peering, "probe01"));
  check(other.start_bgp("probe01"));
  peering.settle();
  Ipv4Prefix other_alloc = db.experiment("no-poison")->allocated_prefixes[0];
  // Expected to be blocked by enforcement — the status is the demo's point.
  (void)other.announce(other_alloc).poison(kTier1A).send();
  peering.settle();
  bool blocked = !pop->neighbors[0]
                      ->speaker->loc_rib()
                      .best(other_alloc)
                      .has_value();
  std::printf("    poisoned announcement blocked by enforcement: %s\n",
              blocked ? "yes" : "NO (bug!)");

  std::printf("\ndone.\n");
  return 0;
}
