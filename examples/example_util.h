// Tiny helpers shared by the example programs: fail fast with the error
// message when a fallible platform/toolkit call does not succeed, so the
// examples stay readable while still consuming every [[nodiscard]] Status.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "netbase/result.h"

namespace peering::examples {

inline void check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "example failed: %s\n", status.error().message.c_str());
    std::exit(1);
  }
}

template <typename T>
T check(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "example failed: %s\n", result.error().message.c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

}  // namespace peering::examples
