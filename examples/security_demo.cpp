// Security walkthrough (§4.7): everything a misbehaving (or compromised)
// experiment might try, and what the platform does about it:
//
//   * prefix hijack (announcing someone else's space)     -> rejected
//   * unauthorized origin ASN                             -> rejected
//   * exceeding the 144 updates/day budget                -> rejected
//   * source-address spoofing on the data plane           -> dropped
//   * communities without the capability                  -> stripped
//   * enforcement-engine overload                         -> fails closed
//
// Run: ./build/examples/security_demo
#include <cstdio>

#include "example_util.h"
#include "platform/peering.h"
#include "toolkit/client.h"

using namespace peering;
using examples::check;

namespace {

Ipv4Prefix pfx(const std::string& s) { return *Ipv4Prefix::parse(s); }

platform::PlatformModel demo_model() {
  platform::PlatformModel model;
  model.resources = platform::NumberedResources::peering_defaults();
  platform::PopModel pop;
  pop.id = "sec01";
  pop.location = "Security Demo PoP";
  pop.type = platform::PopType::kIxp;
  pop.interconnects.push_back(
      {"transit-a", 65001, platform::InterconnectType::kTransit, 1});
  model.pops[pop.id] = pop;
  return model;
}

}  // namespace

int main() {
  std::printf("== PEERING security policies in action ==\n\n");

  sim::EventLoop loop;
  platform::ConfigDatabase db(demo_model());
  platform::Peering peering(&loop, &db);
  peering.build();
  peering.settle();

  platform::ExperimentProposal proposal;
  proposal.id = "mallory";
  proposal.description = "totally legitimate research";
  proposal.requested_prefixes = 1;
  check(db.propose_experiment(proposal));
  check(db.approve_experiment("mallory"));

  toolkit::ExperimentClient client(&loop, "mallory");
  check(client.open_tunnel(peering, "sec01"));
  check(client.start_bgp("sec01"));
  peering.settle();

  auto* pop = peering.pop("sec01");
  auto* transit = pop->neighbors[0].get();
  auto seen_at_transit = [&](const Ipv4Prefix& prefix) {
    return transit->speaker->loc_rib().best(prefix).has_value();
  };
  Ipv4Prefix allocation = db.experiment("mallory")->allocated_prefixes[0];

  // 1. Hijack.
  std::printf("[1] announcing 8.8.8.0/24 (not mallory's space)...\n");
  (void)client.announce(pfx("8.8.8.0/24")).send();
  peering.settle();
  std::printf("    transit sees it: %s\n",
              seen_at_transit(pfx("8.8.8.0/24")) ? "YES (hijack!)"
                                                 : "no (rejected)");

  // 2. Legit announcement for contrast.
  std::printf("[2] announcing the legitimate allocation %s...\n",
              allocation.str().c_str());
  check(client.announce(allocation).send());
  peering.settle();
  std::printf("    transit sees it: %s\n",
              seen_at_transit(allocation) ? "yes (as intended)" : "NO (bug)");

  // 3. Communities without the capability: stripped, not rejected.
  std::printf("[3] attaching community 3356:70 without the communities "
              "capability...\n");
  (void)client.announce(allocation).community(bgp::Community(3356, 70)).send();
  peering.settle();
  auto at_transit = transit->speaker->loc_rib().best(allocation);
  bool leaked = at_transit && at_transit->attrs->has_community(
                                  bgp::Community(3356, 70));
  std::printf("    community visible at transit: %s\n",
              leaked ? "YES (leak!)" : "no (stripped)");

  // 4. Update-rate budget: 144 per prefix per PoP per day.
  std::printf("[4] flapping the prefix past the daily budget...\n");
  int accepted_before = 0;
  for (int i = 0; i < 200; ++i) {
    (void)client.announce(allocation).med(static_cast<std::uint32_t>(i)).send();
    peering.settle(Duration::seconds(1));
  }
  const auto& enforcer = *pop->control;
  std::printf("    enforcement log: %llu accepted, %llu rejected, %llu "
              "transformed\n",
              static_cast<unsigned long long>(enforcer.accepted()),
              static_cast<unsigned long long>(enforcer.rejected()),
              static_cast<unsigned long long>(enforcer.transformed()));
  std::printf("    rate-limit verdicts present: %s\n",
              enforcer.rejected() > 0 ? "yes" : "NO");
  (void)accepted_before;

  // 5. Data-plane spoofing.
  std::printf("[5] sourcing traffic from space outside the allocation...\n");
  auto views = client.routes(pfx("0.0.0.0/0"));
  // Steer anything toward the transit and spoof.
  for (const auto& nb : client.neighbors("sec01")) {
    check(client.select_egress(pfx("198.51.100.0/24"), "sec01", nb.virtual_ip));
    break;
  }
  ip::Ipv4Packet spoof;
  spoof.src = Ipv4Address(1, 2, 3, 4);
  spoof.dst = Ipv4Address(198, 51, 100, 1);
  client.host().send_packet(std::move(spoof));
  peering.settle(Duration::seconds(2));
  std::printf("    spoofed packets dropped at the data plane: %llu\n",
              static_cast<unsigned long long>(
                  pop->router->stats().packets_enforcement_drop));

  // 6. Fail-closed under overload.
  std::printf("[6] simulating enforcement-engine overload...\n");
  pop->control->set_overloaded(true);
  (void)client.announce(allocation).med(999).send();
  peering.settle();
  at_transit = transit->speaker->loc_rib().best(allocation);
  bool updated = at_transit && at_transit->attrs->med == 999u;
  std::printf("    announcement propagated during overload: %s\n",
              updated ? "YES (should fail closed!)" : "no (failed closed)");
  pop->control->set_overloaded(false);

  std::printf("\nattribution log tail:\n");
  std::size_t shown = 0;
  const auto& log = pop->control->log();
  for (std::size_t i = log.size() >= 3 ? log.size() - 3 : 0; i < log.size();
       ++i) {
    const auto& entry = log[i];
    const char* action = entry.action == enforce::Verdict::Action::kAccept
                             ? "ACCEPT"
                             : entry.action == enforce::Verdict::Action::kReject
                                   ? "REJECT"
                                   : "TRANSFORM";
    std::printf("  t=%.1fs %s %s %s [%s] %s\n", entry.at.to_seconds(),
                entry.experiment_id.c_str(), entry.prefix.c_str(), action,
                entry.rule.c_str(), entry.reason.c_str());
    ++shown;
  }
  (void)shown;
  (void)views;
  std::printf("\ndone.\n");
  return 0;
}
